//! Property-based tests of the diffusion building blocks.

use proptest::prelude::*;
use wsn_diffusion::{
    AggregationBuffer, AggregationFn, EventItem, ExplCache, GradientTable, IncomingAgg, MsgId,
    Scheme, TruncationLog, WindowEntry,
};
use wsn_net::NodeId;
use wsn_sim::{SimDuration, SimTime};

fn item(src: u32, round: u32) -> EventItem {
    EventItem {
        source: NodeId(src),
        round,
        generated: SimTime::ZERO,
    }
}

/// An offer script for the exploratory cache: (neighbor, cost, incremental?).
fn offers() -> impl Strategy<Value = Vec<(u32, u32, bool)>> {
    prop::collection::vec((0u32..8, 1u32..30, any::<bool>()), 1..20)
}

proptest! {
    /// The greedy upstream choice equals the brute-force minimum under the
    /// paper's tie rules (cost, then exploratory-over-incremental, then
    /// earliest arrival).
    #[test]
    fn greedy_choice_matches_brute_force(script in offers()) {
        let id = MsgId { source: NodeId(99), round: 0 };
        let mut cache = ExplCache::new();
        // Brute force over *effective* offers: per (neighbor, kind) the best
        // cost with its earliest achieving time.
        let mut best: Option<(u32, u8, u64, u32)> = None; // cost, kind, time, neighbor
        let mut effective: std::collections::HashMap<(u32, bool), (u32, u64)> = Default::default();
        for (t, &(n, cost, incremental)) in script.iter().enumerate() {
            let now = SimTime::from_nanos((t as u64 + 1) * 1000);
            if incremental {
                cache.record_incremental(id, item(99, 0), NodeId(n), cost, now);
            } else {
                cache.record_exploratory(id, item(99, 0), NodeId(n), cost, now);
            }
            let e = effective.entry((n, incremental)).or_insert((cost, now.as_nanos()));
            if cost < e.0 {
                *e = (cost, now.as_nanos());
            }
        }
        for (&(n, incremental), &(cost, time)) in &effective {
            let cand = (cost, u8::from(incremental), time, n);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        let expected = best.map(|(_, _, _, n)| NodeId(n));
        let chosen = cache.choose_upstream(id, Scheme::Greedy).map(|(n, _)| n);
        prop_assert_eq!(chosen, expected);
    }

    /// The opportunistic choice is always the neighbor that delivered the
    /// first *exploratory* copy.
    #[test]
    fn opportunistic_choice_is_first_exploratory(script in offers()) {
        let id = MsgId { source: NodeId(99), round: 0 };
        let mut cache = ExplCache::new();
        let mut first_expl: Option<u32> = None;
        for (t, &(n, cost, incremental)) in script.iter().enumerate() {
            let now = SimTime::from_nanos((t as u64 + 1) * 1000);
            if incremental {
                cache.record_incremental(id, item(99, 0), NodeId(n), cost, now);
            } else {
                cache.record_exploratory(id, item(99, 0), NodeId(n), cost, now);
                if first_expl.is_none() {
                    first_expl = Some(n);
                }
            }
        }
        let chosen = cache.choose_upstream(id, Scheme::Opportunistic).map(|(n, _)| n);
        // The cache's first_from is the neighbor of the first *recorded*
        // message; opportunistic only answers when an exploratory was seen.
        match first_expl {
            Some(n) if script.first().map(|&(_, _, inc)| !inc).unwrap_or(false) => {
                prop_assert_eq!(chosen, Some(NodeId(n)));
            }
            _ => {} // first message was incremental: entry exists but answer may be None
        }
    }

    /// The aggregation buffer's outgoing cost is bounded: at least 1 (its
    /// own transmission) and at most the sum of all incoming costs plus 1.
    #[test]
    fn aggregate_cost_is_bounded(
        aggs in prop::collection::vec(
            (prop::collection::btree_set((0u32..4, 0u32..6), 1..5), 0.0f64..20.0),
            1..8,
        )
    ) {
        let mut buf = AggregationBuffer::new();
        let mut seen: std::collections::HashSet<(NodeId, u32)> = Default::default();
        let mut total_cost = 0.0;
        for (i, (items, cost)) in aggs.iter().enumerate() {
            let items: Vec<EventItem> = items.iter().map(|&(s, r)| item(s, r)).collect();
            let new_items: Vec<EventItem> = items
                .iter()
                .filter(|it| seen.insert(it.key()))
                .copied()
                .collect();
            buf.offer(
                IncomingAgg {
                    from: Some(NodeId(i as u32 + 100)),
                    items,
                    cost: *cost,
                    arrived: SimTime::ZERO,
                },
                &new_items,
            );
            total_cost += cost;
        }
        if let Some(out) = buf.flush() {
            prop_assert!(out.cost >= 1.0);
            prop_assert!(out.cost <= total_cost + 1.0 + 1e-9);
            prop_assert!(!out.items.is_empty());
            // Items are distinct and sorted by key.
            let keys: Vec<_> = out.items.iter().map(EventItem::key).collect();
            let mut sorted = keys.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(keys, sorted);
        }
        // After a flush nothing remains.
        prop_assert!(buf.flush().is_none());
    }

    /// Truncation never cuts the sole sender, never cuts a non-sender, and
    /// under the greedy rule the surviving senders still cover every source
    /// in the window.
    #[test]
    fn truncation_is_safe(
        entries in prop::collection::vec(
            (0u32..5, prop::collection::btree_set((0u32..4, 0u32..4), 1..4), 0.5f64..10.0, any::<bool>()),
            1..12,
        ),
        scheme in prop::sample::select(vec![Scheme::Greedy, Scheme::Opportunistic]),
    ) {
        let mut log = TruncationLog::new(SimDuration::from_secs(2));
        for (i, (from, items, cost, had_new)) in entries.iter().enumerate() {
            log.record(WindowEntry {
                from: NodeId(*from),
                items: items.iter().map(|&(s, r)| item(s, r)).collect(),
                cost: *cost,
                arrived: SimTime::from_nanos(i as u64),
                had_new: *had_new,
            });
        }
        let senders = log.senders();
        let truncated = log.decide(scheme, SimTime::from_nanos(entries.len() as u64));
        for t in &truncated {
            prop_assert!(senders.contains(t), "truncated a non-sender");
        }
        if senders.len() == 1 {
            prop_assert!(truncated.is_empty());
        }
        if scheme == Scheme::Greedy {
            // The greedy rule always keeps the selected cover's senders.
            prop_assert!(truncated.len() < senders.len().max(1), "greedy truncated everyone");
        }
        if scheme == Scheme::Greedy && !truncated.is_empty() {
            // Survivors still cover all sources present in the window.
            let all_sources: std::collections::BTreeSet<u32> = entries
                .iter()
                .flat_map(|(_, items, _, _)| items.iter().map(|&(s, _)| s))
                .collect();
            let surviving_sources: std::collections::BTreeSet<u32> = entries
                .iter()
                .filter(|(from, _, _, _)| !truncated.contains(&NodeId(*from)))
                .flat_map(|(_, items, _, _)| items.iter().map(|&(s, _)| s))
                .collect();
            prop_assert_eq!(all_sources, surviving_sources, "coverage lost by truncation");
        }
    }

    /// Gradient table: reinforce ⇒ on-tree; degrade ⇒ not; expiry respected;
    /// refresh never shortens validity.
    #[test]
    fn gradient_lifecycle(ops in prop::collection::vec((0u32..4, 0u8..3, 1u64..100), 1..40)) {
        let mut table = GradientTable::new();
        let mut model: std::collections::HashMap<u32, u64> = Default::default(); // data_until
        for (i, &(n, op, horizon)) in ops.iter().enumerate() {
            let now = i as u64;
            let until = now + horizon;
            match op {
                0 => {
                    table.reinforce(NodeId(n), SimTime::from_nanos(until));
                    let e = model.entry(n).or_insert(0);
                    *e = (*e).max(until);
                }
                1 => {
                    table.degrade(NodeId(n));
                    model.remove(&n);
                }
                _ => {
                    table.refresh_exploratory(NodeId(n), SimTime::from_nanos(until));
                }
            }
            let t = SimTime::from_nanos(now);
            for (&m, &du) in &model {
                prop_assert_eq!(table.has_data(NodeId(m), t), du >= now);
            }
            prop_assert_eq!(
                table.on_tree(t),
                model.values().any(|&du| du >= now)
            );
        }
    }

    /// Aggregate sizing: perfect is constant; linear is affine and matches
    /// the paper's coefficients.
    #[test]
    fn aggregation_fn_sizes(d in 1usize..50) {
        prop_assert_eq!(AggregationFn::Perfect.aggregate_bytes(d, 64), 64);
        let lin = AggregationFn::LINEAR_PAPER.aggregate_bytes(d, 64);
        prop_assert_eq!(lin, 28 * d as u32 + 36);
    }
}
