//! The paper's Figure 3 mechanism, end to end: greedy aggregation connects a
//! second source to the *closest point of the existing tree* via incremental
//! cost messages, not via its own shortest path to the sink.
//!
//! Topology (35 m spacing, 40 m range — only orthogonal links exist):
//!
//! ```text
//!   s1(0) — a(1) — b(2) — sink(3)
//!    |       |      |       |
//!   s2(4) — r1(5) — r2(6) — r3(7)
//! ```
//!
//! s2's two routes to the sink both cost 4 transmissions (via s1's tree or
//! via the bottom row). The greedy incremental tree attaches s2 at s1
//! (1 extra edge, total tree cost 4); a shortest-path route along the bottom
//! row would cost 4 fresh edges (total 7).

use wsn_diffusion::{DiffusionConfig, DiffusionNode, MsgKind, Role, Scheme};
use wsn_net::{NetConfig, Network, NodeId, Position, Topology};
use wsn_sim::SimTime;

fn grid() -> Topology {
    Topology::new(
        vec![
            Position::new(0.0, 0.0),     // 0 s1
            Position::new(35.0, 0.0),    // 1 a
            Position::new(70.0, 0.0),    // 2 b
            Position::new(105.0, 0.0),   // 3 sink
            Position::new(0.0, -35.0),   // 4 s2
            Position::new(35.0, -35.0),  // 5 r1
            Position::new(70.0, -35.0),  // 6 r2
            Position::new(105.0, -35.0), // 7 r3
        ],
        40.0,
    )
}

fn run(scheme: Scheme, seed: u64) -> Network<DiffusionNode> {
    let cfg = DiffusionConfig::for_scheme(scheme);
    let mut net = Network::new(grid(), NetConfig::default(), seed, |id| {
        let role = match id.index() {
            0 | 4 => Role::SOURCE,
            3 => Role::SINK,
            _ => Role::RELAY,
        };
        DiffusionNode::new(cfg.clone(), id, role)
    });
    net.run_until(SimTime::from_secs(120));
    net
}

/// The set of nodes holding a live data gradient (the tree's interior).
fn tree_nodes(net: &Network<DiffusionNode>) -> Vec<u32> {
    let now = net.now();
    net.protocols()
        .filter(|(_, p)| p.gradients().on_tree(now))
        .map(|(id, _)| id.0)
        .collect()
}

#[test]
fn topology_is_the_intended_grid() {
    let topo = grid();
    // Orthogonal links only: s2 (4) hears s1 (0) and r1 (5), nothing else.
    assert_eq!(topo.neighbors(NodeId(4)), &[NodeId(0), NodeId(5)]);
    // Both of s2's routes to the sink are 4 hops.
    assert_eq!(topo.hop_distance(NodeId(4), NodeId(3)), Some(4));
}

#[test]
fn greedy_attaches_the_second_source_at_the_tree() {
    // The core Figure 3 assertion. Check across several seeds: greedy must
    // consistently put s2's data through s1 (the closest tree point), not
    // through the bottom row.
    for seed in [1u64, 2, 3, 4, 5] {
        let net = run(Scheme::Greedy, seed);
        let now = net.now();
        let sink = net.protocol(NodeId(3));
        assert_eq!(
            sink.sink.per_source.len(),
            2,
            "seed {seed}: a source was lost"
        );
        assert!(
            net.protocol(NodeId(4)).gradients().has_data(NodeId(0), now),
            "seed {seed}: s2 does not feed s1 — not a greedy incremental tree"
        );
        // The bottom row stays off the tree.
        let tree = tree_nodes(&net);
        for relay in [5u32, 6, 7] {
            assert!(
                !tree.contains(&relay),
                "seed {seed}: bottom relay n{relay} is on the greedy tree {tree:?}"
            );
        }
    }
}

#[test]
fn incremental_cost_messages_originate_at_on_tree_sources() {
    let net = run(Scheme::Greedy, 9);
    // s1 is the on-tree source that hears s2's exploratory events: it must
    // have generated incremental cost messages. Once s2 joins the tree it is
    // an on-tree source too and symmetrically answers s1's rounds — both
    // sources advertise, the sink and off-tree relays never originate.
    let s1 = net.protocol(NodeId(0));
    assert!(
        s1.counters.sent(MsgKind::IncrementalCost) > 0,
        "the on-tree source never advertised the tree"
    );
    // The bottom row may forward a few during round 0 — the paper's own
    // transient ("the algorithm initially constructs a lowest-energy-path
    // tree ... pruned off using the negative reinforcement mechanism") —
    // but the steady-state advertisement volume lives on the tree: the
    // on-tree sources out-advertise any bottom relay.
    let bottom_max = [5u32, 6, 7]
        .into_iter()
        .map(|r| {
            net.protocol(NodeId(r))
                .counters
                .sent(MsgKind::IncrementalCost)
        })
        .max()
        .unwrap_or(0);
    let s2 = net
        .protocol(NodeId(4))
        .counters
        .sent(MsgKind::IncrementalCost);
    assert!(
        s1.counters.sent(MsgKind::IncrementalCost) + s2 >= bottom_max,
        "tree sources advertise less than a pruned relay"
    );
}

#[test]
fn greedy_tree_is_no_larger_than_opportunistic_on_this_grid() {
    let mut greedy_sizes = Vec::new();
    let mut opp_sizes = Vec::new();
    for seed in [11u64, 12, 13] {
        greedy_sizes.push(tree_nodes(&run(Scheme::Greedy, seed)).len());
        opp_sizes.push(tree_nodes(&run(Scheme::Opportunistic, seed)).len());
    }
    let g: usize = greedy_sizes.iter().sum();
    let o: usize = opp_sizes.iter().sum();
    assert!(
        g <= o,
        "greedy trees ({greedy_sizes:?}) larger than opportunistic ({opp_sizes:?})"
    );
    // And the greedy tree is exactly the GIT: s1, a, b on-tree plus s2
    // (4 data-forwarding nodes).
    assert!(
        greedy_sizes.iter().all(|&s| s == 4),
        "greedy tree sizes {greedy_sizes:?} != 4"
    );
}

#[test]
fn both_schemes_deliver_both_sources_here() {
    for scheme in [Scheme::Greedy, Scheme::Opportunistic] {
        let net = run(scheme, 21);
        let sink = net.protocol(NodeId(3));
        // 115 s of generation at 2/s per source, minus warm-up losses.
        assert!(
            sink.sink.distinct > 380,
            "{scheme}: only {} of ~460 events arrived",
            sink.sink.distinct
        );
    }
}

#[test]
fn synchronized_sources_converge_to_the_git_after_round_one() {
    // §4.1: "In that scenario, the algorithm initially constructs a
    // lowest-energy-path tree (i.e., each source is connected to the sink
    // using the lowest-energy path), but this problem is not persistent. At
    // the subsequent round of exploratory events, the greedy incremental
    // tree will be constructed and the lowest-energy-path tree will be
    // pruned off using the negative reinforcement mechanism."
    //
    // Both sources start at exactly t = 5 s (sources are time-synchronized
    // by construction). Measure the data-transmission rate in a window
    // inside round 1 (tree = per-source lowest-energy paths, ~7 edges on
    // this grid) and a window after round 2 (tree = GIT, 4 edges).
    let count_data = |net: &Network<DiffusionNode>| -> u64 {
        net.protocols()
            .map(|(_, p)| p.counters.sent(MsgKind::Data))
            .sum()
    };
    let cfg = DiffusionConfig::for_scheme(Scheme::Greedy);
    let mut net = Network::new(grid(), NetConfig::default(), 41, |id| {
        let role = match id.index() {
            0 | 4 => Role::SOURCE,
            3 => Role::SINK,
            _ => Role::RELAY,
        };
        DiffusionNode::new(cfg.clone(), id, role)
    });
    net.run_until(SimTime::from_secs(10)); // settle round 1's tree
    let at_10 = count_data(&net);
    net.run_until(SimTime::from_secs(50)); // end of round 1 regime
    let at_50 = count_data(&net);
    net.run_until(SimTime::from_secs(65)); // settle round 2's tree
    let at_65 = count_data(&net);
    net.run_until(SimTime::from_secs(105));
    let at_105 = count_data(&net);

    let round1_rate = (at_50 - at_10) as f64 / 40.0;
    let round2_rate = (at_105 - at_65) as f64 / 40.0;
    // The GIT (4 edges, 2 ev/s, aggregation merging both sources at s1)
    // must beat the round-1 lowest-energy-path tree. Require a clear drop.
    assert!(
        round2_rate < round1_rate * 0.9,
        "no pruning: round-1 rate {round1_rate:.1} tx/s, round-2 rate {round2_rate:.1} tx/s"
    );
    // And the sink keeps receiving throughout.
    assert!(net.protocol(NodeId(3)).sink.distinct > 330);
}
