//! Criterion micro-benchmarks for the reproduction's hot paths.
//!
//! These are engineering benchmarks (how fast is the simulator), not the
//! paper's experiments — those are the `fig5`..`fig10` binaries.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wsn_core::Experiment;
use wsn_diffusion::Scheme;
use wsn_scenario::{generate_field, ScenarioSpec};
use wsn_setcover::{exact_cover, greedy_cover, CoverInstance};
use wsn_sim::{EventQueue, SimDuration, SimRng, SimTime};
use wsn_trees::{compare_trees, random_geometric, random_sources};

/// A reproducible random cover instance with `sets` subsets over `elems`
/// elements.
fn random_instance(sets: usize, elems: u32, seed: u64) -> CoverInstance {
    let mut rng = SimRng::from_seed_stream(seed, 0);
    let mut inst = CoverInstance::new();
    // Guarantee coverage with one big set, then add random ones.
    inst.add_subset((0..elems).collect(), elems as f64);
    for _ in 1..sets {
        let k = 1 + rng.index(6.min(elems as usize));
        let items: Vec<u32> = (0..k).map(|_| rng.below(u64::from(elems)) as u32).collect();
        inst.add_subset(items, 0.5 + rng.f64() * 9.5);
    }
    inst
}

fn bench_setcover(c: &mut Criterion) {
    let mut group = c.benchmark_group("setcover");
    group.measurement_time(Duration::from_secs(2));
    for &(sets, elems) in &[(8usize, 12u32), (32, 24), (128, 48)] {
        let inst = random_instance(sets, elems, 42);
        group.bench_with_input(
            BenchmarkId::new("greedy", format!("{sets}x{elems}")),
            &inst,
            |b, inst| b.iter(|| greedy_cover(black_box(inst))),
        );
    }
    let small = random_instance(10, 14, 7);
    group.bench_function("exact_10x14", |b| b.iter(|| exact_cover(black_box(&small))));
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut rng = SimRng::from_seed_stream(1, 0);
            for i in 0..10_000u64 {
                q.push(SimTime::from_nanos(rng.next_u64() % 1_000_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, _, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_trees(c: &mut Criterion) {
    let mut group = c.benchmark_group("trees");
    group.measurement_time(Duration::from_secs(3));
    for &n in &[100usize, 350] {
        let mut rng = SimRng::from_seed_stream(9, n as u64);
        let (g, _) = random_geometric(n, 200.0, 40.0, &mut rng);
        let sources = random_sources(n, 5, 0, &mut rng);
        group.bench_with_input(BenchmarkId::new("git_vs_spt", n), &(g, sources), |b, (g, s)| {
            b.iter(|| compare_trees(black_box(g), 0, black_box(s)))
        });
    }
    group.finish();
}

fn bench_field_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario");
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("generate_field_350", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = SimRng::from_seed_stream(seed, 0);
            black_box(generate_field(350, 200.0, 40.0, &mut rng))
        })
    });
    group.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_run");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));
    for scheme in [Scheme::Greedy, Scheme::Opportunistic] {
        group.bench_function(format!("100_nodes_30s_{scheme}"), |b| {
            let mut spec = ScenarioSpec::paper(100, 5);
            spec.duration = SimDuration::from_secs(30);
            let inst = spec.instantiate();
            let exp = Experiment::new(spec.clone(), scheme);
            b.iter(|| black_box(exp.run_on(&inst)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_setcover,
    bench_event_queue,
    bench_trees,
    bench_field_generation,
    bench_full_run
);
criterion_main!(benches);
