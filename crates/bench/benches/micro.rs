//! Micro-benchmarks for the reproduction's hot paths (std-only harness).
//!
//! These are engineering benchmarks (how fast is the simulator), not the
//! paper's experiments — those are the `fig5`..`fig10` binaries. The
//! harness is a plain `main` (`harness = false`): each benchmark is timed
//! with `Instant` over a fixed warmup + measurement loop and reported as
//! median / mean ns per iteration. Iteration counts scale with
//! `WSN_BENCH_SCALE` (default 1); `WSN_BENCH_ONLY=<substring>` runs only
//! the benchmarks whose name contains the substring (used by
//! `scripts/bench_baseline.sh` to time just the 10k-scale path).

use std::hint::black_box;
use std::time::Instant;

use wsn_core::Experiment;
use wsn_diffusion::Scheme;
use wsn_net::{Ctx, NetConfig, Network, Packet, Position, Protocol, Topology};
use wsn_scenario::{generate_field, ScenarioSpec};
use wsn_setcover::{exact_cover, greedy_cover, CoverInstance};
use wsn_sim::{EventQueue, SimDuration, SimRng, SimTime};
use wsn_trees::{compare_trees, random_geometric, random_sources};

/// Times `iters` runs of `f` (after `warmup` unmeasured runs) and prints a
/// one-line report.
fn bench<R>(name: &str, warmup: u64, iters: u64, mut f: impl FnMut() -> R) {
    if let Ok(filter) = std::env::var("WSN_BENCH_ONLY") {
        if !name.contains(&filter) {
            return;
        }
    }
    let scale: u64 = std::env::var("WSN_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let iters = (iters * scale).max(1);
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples: Vec<f64> = Vec::with_capacity(iters as usize);
    let total = Instant::now();
    for _ in 0..iters {
        let t = Instant::now();
        black_box(f());
        samples.push(t.elapsed().as_secs_f64() * 1e9);
    }
    let total = total.elapsed().as_secs_f64();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[samples.len() / 2];
    let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{name:<28} {iters:>6} iters  median {median:>12.0} ns  mean {mean:>12.0} ns  total {total:>6.2} s"
    );
}

/// A reproducible random cover instance with `sets` subsets over `elems`
/// elements.
fn random_instance(sets: usize, elems: u32, seed: u64) -> CoverInstance {
    let mut rng = SimRng::from_seed_stream(seed, 0);
    let mut inst = CoverInstance::new();
    // Guarantee coverage with one big set, then add random ones.
    inst.add_subset((0..elems).collect(), elems as f64);
    for _ in 1..sets {
        let k = 1 + rng.index(6.min(elems as usize));
        let items: Vec<u32> = (0..k).map(|_| rng.below(u64::from(elems)) as u32).collect();
        inst.add_subset(items, 0.5 + rng.f64() * 9.5);
    }
    inst
}

fn bench_setcover() {
    for &(sets, elems) in &[(8usize, 12u32), (32, 24), (128, 48)] {
        let inst = random_instance(sets, elems, 42);
        bench(&format!("setcover/greedy_{sets}x{elems}"), 10, 200, || {
            greedy_cover(black_box(&inst))
        });
    }
    let small = random_instance(10, 14, 7);
    bench("setcover/exact_10x14", 3, 50, || {
        exact_cover(black_box(&small))
    });
}

fn bench_event_queue() {
    bench("event_queue/push_pop_10k", 3, 50, || {
        let mut q = EventQueue::new();
        let mut rng = SimRng::from_seed_stream(1, 0);
        for i in 0..10_000u64 {
            q.push(SimTime::from_nanos(rng.next_u64() % 1_000_000_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, _, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        sum
    });
    // Half the pushes get cancelled before ever firing — the ACK-timeout
    // pattern (armed on every unicast, cancelled by the ACK).
    bench("event_queue/cancel_half_10k", 3, 50, || {
        let mut q = EventQueue::new();
        let mut rng = SimRng::from_seed_stream(2, 0);
        let mut ids = Vec::with_capacity(10_000);
        for i in 0..10_000u64 {
            ids.push(q.push(SimTime::from_nanos(rng.next_u64() % 1_000_000_000), i));
        }
        for id in ids.iter().skip(1).step_by(2) {
            q.cancel(*id);
        }
        let mut sum = 0u64;
        while let Some((_, _, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        sum
    });
    // Fixed-population churn — the dispatch loop's actual steady state
    // (slot reuse, no growth). One iteration = 10k rounds of
    // cancel + pop + 2 pushes + pop at population 64.
    bench("event_queue/churn_steady_64", 3, 20, || {
        let mut q = EventQueue::new();
        let mut ids = Vec::with_capacity(64);
        for i in 0..64u64 {
            ids.push(q.push(SimTime::from_nanos(i), i));
        }
        let mut t = 64u64;
        let mut sum = 0u64;
        for round in 0..10_000u64 {
            let slot = (round % 64) as usize;
            q.cancel(ids[slot]);
            if let Some((_, _, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            ids[slot] = q.push(SimTime::from_nanos(t), t);
            t += 1;
            q.push(SimTime::from_nanos(t), t);
            t += 1;
            q.pop();
        }
        sum
    });
}

/// A protocol that broadcasts on every timer tick — saturates the PHY
/// broadcast loops (carrier sense, reception bookkeeping, meter updates)
/// under CSMA contention.
struct Storm;

impl Protocol for Storm {
    type Msg = ();
    type Timer = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, (), ()>) {
        let phase = ctx.jitter(SimDuration::from_millis(200));
        ctx.set_timer(SimDuration::from_millis(100) + phase, ());
    }

    fn on_packet(&mut self, _ctx: &mut Ctx<'_, (), ()>, _p: &Packet<()>) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_, (), ()>, _t: ()) {
        ctx.broadcast(36, ());
        ctx.set_timer(SimDuration::from_millis(100), ());
    }
}

fn bench_phy_broadcast() {
    // A 6×6 grid, 30 m pitch, 40 m range: 4-neighbor interiors, real
    // contention, no partitions. One iteration = 10 simulated seconds of
    // every node broadcasting at 10 Hz.
    let cols = 6usize;
    bench("phy/broadcast_grid36_10s", 1, 10, || {
        let mut positions = Vec::new();
        for row in 0..cols {
            for col in 0..cols {
                positions.push(Position::new(col as f64 * 30.0, row as f64 * 30.0));
            }
        }
        let topo = Topology::new(positions, 40.0);
        let mut net = Network::new(topo, NetConfig::default(), 13, |_| Storm);
        net.run_until(SimTime::from_secs(10));
        net.events_processed()
    });
}

fn bench_trees() {
    for &n in &[100usize, 350] {
        let mut rng = SimRng::from_seed_stream(9, n as u64);
        let (g, _) = random_geometric(n, 200.0, 40.0, &mut rng);
        let sources = random_sources(n, 5, 0, &mut rng);
        bench(&format!("trees/git_vs_spt_{n}"), 3, 50, || {
            compare_trees(black_box(&g), 0, black_box(&sources))
        });
    }
}

fn bench_field_generation() {
    let mut seed = 0u64;
    bench("scenario/generate_field_350", 2, 30, || {
        seed += 1;
        let mut rng = SimRng::from_seed_stream(seed, 0);
        generate_field(350, 200.0, 40.0, &mut rng)
    });
}

fn bench_scale_10k() {
    // The tentpole target: 10,000 nodes at the paper's 200-node density
    // (200 m × √50 ≈ 1414 m square, 40 m range). The spatial grid must
    // build this topology in well under 100 ms; all-pairs took seconds.
    let side = 200.0 * 50f64.sqrt();
    let mut rng = SimRng::from_seed_stream(2002, 0);
    let positions: Vec<Position> = (0..10_000)
        .map(|_| Position::new(rng.f64() * side, rng.f64() * side))
        .collect();
    bench("topology/build_10k", 2, 20, || {
        Topology::new(black_box(positions.clone()), 40.0)
    });
    // A short full-stack run at 10k nodes: field generation through the
    // grid, then two simulated seconds of diffusion (interest flooding —
    // the densest phase) over the SoA engine state.
    let spec = ScenarioSpec {
        node_count: 10_000,
        field_side_m: side,
        duration: SimDuration::from_secs(2),
        ..ScenarioSpec::default()
    };
    let inst = spec.instantiate();
    let exp = Experiment::new(spec, Scheme::Greedy);
    bench("scale/sim_10k_2s", 1, 3, || exp.run_on(&inst));
}

fn bench_full_run() {
    for scheme in [Scheme::Greedy, Scheme::Opportunistic] {
        let mut spec = ScenarioSpec::paper(100, 5);
        spec.duration = SimDuration::from_secs(30);
        let inst = spec.instantiate();
        let exp = Experiment::new(spec.clone(), scheme);
        bench(&format!("full_run/100_nodes_30s_{scheme}"), 1, 5, || {
            exp.run_on(&inst)
        });
    }
}

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    bench_setcover();
    bench_event_queue();
    bench_phy_broadcast();
    bench_trees();
    bench_field_generation();
    bench_scale_10k();
    bench_full_run();
}
