//! Regenerates every figure of the paper's evaluation (Figures 5-10).
//! See `wsn_bench` for options.

use wsn_bench::{run_and_print, HarnessOptions};
use wsn_core::Figure;

fn main() {
    let opts = HarnessOptions::from_env();
    for figure in Figure::ALL {
        run_and_print(figure, &opts);
    }
}
