//! Reduce a directory of run traces (written by `--trace DIR` on any figure
//! binary) into figure-style summaries: per-node energy histogram, the top-N
//! hottest nodes, and totals, per trace file and aggregated.
//!
//! ```sh
//! cargo run --release -p wsn-bench --bin fig8 -- --quick --trace traces/
//! cargo run --release -p wsn-bench --bin trace_report -- traces/ --top 10
//! ```
//!
//! Also accepts a single `.jsonl` file in place of a directory. Exits with
//! status 2 when the path does not exist or holds no trace files. With
//! `--profile`, traces from profiled runs (`--profile` on the figure binary)
//! additionally get a per-event-type dispatch-cost table.

use std::path::{Path, PathBuf};

use wsn_trace::TraceSummary;

struct Args {
    path: PathBuf,
    top: usize,
    buckets: usize,
    profile: bool,
}

fn parse_args() -> Args {
    let mut path: Option<PathBuf> = None;
    let mut top = 5usize;
    let mut buckets = 10usize;
    let mut profile = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--top" => top = val().parse().expect("--top takes an integer"),
            "--buckets" => buckets = val().parse().expect("--buckets takes an integer"),
            "--profile" => profile = true,
            other if other.starts_with("--") => {
                panic!(
                    "unknown argument {other:?}; usage: trace_report DIR [--top N] [--buckets N] \
                     [--profile]"
                )
            }
            other => {
                assert!(
                    path.is_none(),
                    "at most one trace path, got a second: {other:?}"
                );
                path = Some(PathBuf::from(other));
            }
        }
    }
    Args {
        path: path.expect("usage: trace_report DIR [--top N] [--buckets N] [--profile]"),
        top,
        buckets,
        profile,
    }
}

/// The `.jsonl` files under `path` (or `path` itself if it is a file),
/// sorted by name for deterministic report order.
fn trace_files(path: &Path) -> Vec<PathBuf> {
    if path.is_file() {
        return vec![path.to_path_buf()];
    }
    let Ok(entries) = std::fs::read_dir(path) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    files.sort();
    files
}

fn main() {
    let args = parse_args();
    let files = trace_files(&args.path);
    if files.is_empty() {
        eprintln!("error: no .jsonl trace files at {}", args.path.display());
        std::process::exit(2);
    }
    let mut grand_energy = 0.0;
    let mut grand_records = 0u64;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", file.display());
                std::process::exit(2);
            }
        };
        let summary = TraceSummary::from_text(&text);
        println!("=== {} ===", file.display());
        print!("{}", summary.render(args.top, args.buckets));
        if args.profile {
            let section = summary.render_profile();
            if section.is_empty() {
                println!("# no profile records (re-run with --profile on the figure binary)");
            } else {
                print!("{section}");
            }
        }
        println!();
        grand_energy += summary.total_energy_j();
        grand_records += summary.records;
    }
    println!(
        "# {} trace file(s), {} records, {:.9} J total debited energy",
        files.len(),
        grand_records,
        grand_energy
    );
}
