//! Ablation studies of greedy aggregation's design knobs.
//!
//! The paper fixes `T_p = 1 s`, `T_a = 0.5 s`, and one exploratory event per
//! 50 s, and motivates each choice qualitatively. This harness measures what
//! each knob actually buys on a dense field (250 nodes, the regime where the
//! schemes separate):
//!
//! 1. **`T_p` (reinforcement timer)** — too short and the sink reinforces
//!    before incremental cost messages arrive (the tree degenerates toward
//!    opportunistic's); longer buys nothing once offers are in.
//! 2. **`T_a` (aggregation delay)** — the delay/energy trade: short `T_a`
//!    flushes partial aggregates (more transmissions), long `T_a` adds
//!    latency for no extra sharing once all sources are covered.
//! 3. **Exploratory interval** — more frequent rounds react faster to
//!    dynamics but pay flood overhead on every round.
//!
//! Usage: `cargo run --release -p wsn-bench --bin ablations [-- --fields N]`.

use wsn_bench::HarnessOptions;
use wsn_core::{field_seed, run_sweep, MetricKind, Runner};
use wsn_diffusion::{DiffusionConfig, Scheme};
use wsn_metrics::FigureTable;
use wsn_scenario::ScenarioSpec;
use wsn_sim::SimDuration;

const NODES: usize = 250;

#[allow(clippy::too_many_arguments)]
fn sweep(
    runner: &Runner,
    title: &str,
    x_label: &str,
    values: &[f64],
    fields: usize,
    duration: SimDuration,
    seed: u64,
    configure: impl Fn(Scheme, f64) -> DiffusionConfig,
) {
    let mut energy = FigureTable::new(
        format!("{title} — Average Dissipated Energy (J/node/event)"),
        x_label,
        vec!["greedy".into(), "opportunistic".into()],
    );
    let mut delay = FigureTable::new(
        format!("{title} — Average Delay (s/event)"),
        x_label,
        vec!["greedy".into(), "opportunistic".into()],
    );
    let mut delivery = FigureTable::new(
        format!("{title} — Distinct-Event Delivery Ratio"),
        x_label,
        vec!["greedy".into(), "opportunistic".into()],
    );
    // The whole ablation sweep is one job list: every (value, field,
    // scheme) run is exposed to the worker pool at once.
    let points = run_sweep(
        runner,
        values,
        fields,
        |pi, f| {
            let mut spec = ScenarioSpec::paper(NODES, field_seed(seed, pi as u64, f as u64));
            spec.duration = duration;
            spec
        },
        |pi, scheme| configure(scheme, values[pi]),
    )
    .expect("ablation sweeps run without a watchdog budget");
    for point in &points {
        let v = point.x;
        for (table, metric) in [
            (&mut energy, MetricKind::ActivityEnergy),
            (&mut delay, MetricKind::Delay),
            (&mut delivery, MetricKind::Delivery),
        ] {
            table.push_row(
                v,
                vec![
                    point.summary(Scheme::Greedy, metric),
                    point.summary(Scheme::Opportunistic, metric),
                ],
            );
        }
    }
    println!("{}", energy.render_text());
    println!("{}", delay.render_text());
    println!("{}", delivery.render_text());
}

fn main() {
    let opts = HarnessOptions::from_env();
    let fields = opts.params.fields_per_point.min(5);
    let duration = opts.params.duration;
    let seed = opts.params.seed;
    let runner = &opts.runner;

    println!(
        "# Ablations at {NODES} nodes, {fields} fields/point, {} workers\n",
        runner.effective_workers()
    );

    // 1. The sink's reinforcement timer T_p (seconds). T_p = 0 makes greedy
    //    reinforce immediately, before incremental cost offers arrive.
    sweep(
        runner,
        "Ablation 1: reinforcement timer T_p",
        "T_p (s)",
        &[0.0, 0.25, 0.5, 1.0, 2.0, 5.0],
        fields,
        duration,
        seed ^ 0xA1,
        |scheme, v| DiffusionConfig {
            reinforce_delay: SimDuration::from_secs_f64(v),
            ..DiffusionConfig::for_scheme(scheme)
        },
    );

    // 2. The aggregation delay T_a (seconds). The truncation window scales
    //    with it as in the paper (T_n = 4·T_a, floor 1 s).
    sweep(
        runner,
        "Ablation 2: aggregation delay T_a",
        "T_a (s)",
        &[0.05, 0.125, 0.25, 0.5, 1.0, 2.0],
        fields,
        duration,
        seed ^ 0xA2,
        |scheme, v| DiffusionConfig {
            aggregation_delay: SimDuration::from_secs_f64(v),
            truncation_window: SimDuration::from_secs_f64((4.0 * v).max(1.0)),
            ..DiffusionConfig::for_scheme(scheme)
        },
    );

    // 3. The exploratory interval (seconds between exploratory events).
    sweep(
        runner,
        "Ablation 3: exploratory interval",
        "interval (s)",
        &[10.0, 25.0, 50.0, 100.0],
        fields,
        duration,
        seed ^ 0xA3,
        |scheme, v| DiffusionConfig {
            exploratory_interval: SimDuration::from_secs_f64(v),
            data_gradient_timeout: SimDuration::from_secs_f64(2.2 * v),
            ..DiffusionConfig::for_scheme(scheme)
        },
    );
}
