//! The diffusion lineage's evaluation brackets, applied to the ICDCS
//! scenario: **flooding** (maximally robust, maximally expensive) above,
//! **omniscient multicast** (an oracle delivering one transmission per
//! greedy-incremental-tree edge per round, zero control overhead) below,
//! with the two diffusion instantiations in between.
//!
//! ```sh
//! cargo run --release -p wsn-bench --bin baselines [-- --fields N --duration SECS]
//! ```

use wsn_bench::HarnessOptions;
use wsn_core::{field_seed, Experiment};
use wsn_diffusion::{FloodingConfig, FloodingNode, Role, Scheme};
use wsn_metrics::{FigureTable, Summary};
use wsn_net::{NetConfig, Network};
use wsn_scenario::ScenarioSpec;
use wsn_trace::JsonlSink;
use wsn_trees::{greedy_incremental_tree, Graph};

fn main() {
    let opts = HarnessOptions::from_env();
    let fields = opts.params.fields_per_point.min(6);
    let duration = opts.params.duration;
    let nodes = 250usize;

    let mut energy = FigureTable::new(
        format!("Baselines at {nodes} nodes — Average Dissipated Energy (J/node/event)"),
        "field",
        vec![
            "flooding".into(),
            "opportunistic".into(),
            "greedy".into(),
            "omniscient (bound)".into(),
        ],
    );
    let mut delivery = FigureTable::new(
        format!("Baselines at {nodes} nodes — Distinct-Event Delivery Ratio"),
        "field",
        vec![
            "flooding".into(),
            "opportunistic".into(),
            "greedy".into(),
            "omniscient (bound)".into(),
        ],
    );

    // One job per field; each worker builds (and drops) its own networks.
    // Results come back keyed by field index, so the tables are identical
    // to a serial run at any worker count.
    let field_indices: Vec<u64> = (0..fields as u64).collect();
    let rows = opts.runner.parallel_map(&field_indices, |_, &f| {
        let mut spec = ScenarioSpec::paper(nodes, field_seed(opts.params.seed ^ 0xBA5E, 0, f));
        spec.duration = duration;
        let instance = spec.instantiate();

        // Flooding.
        let mut flood_net = Network::new(
            instance.field.topology.clone(),
            NetConfig::default(),
            spec.seed,
            |id| {
                let (is_source, is_sink) = instance.role_of(id);
                FloodingNode::new(FloodingConfig::default(), id, Role { is_source, is_sink })
            },
        );
        flood_net.run_until(instance.end);
        let flood_distinct: u64 = flood_net
            .protocols()
            .filter(|(_, p)| p.role().is_sink)
            .map(|(_, p)| p.sink.distinct)
            .sum();
        let flood_generated: u64 = flood_net
            .protocols()
            .filter(|(_, p)| p.role().is_source)
            .map(|(_, p)| p.events_generated)
            .sum();
        let flood_energy = if flood_distinct == 0 {
            f64::INFINITY
        } else {
            flood_net.total_activity_energy() / nodes as f64 / flood_distinct as f64
        };
        let flood_delivery = flood_distinct as f64 / flood_generated.max(1) as f64;

        // The two diffusion schemes. These go through the hand-rolled
        // instance (shared with the flooding bracket) rather than a
        // `RunJob`, so `--trace` is honoured here directly: one file per
        // (field, scheme) under the runner's naming scheme, point 0.
        let mut scheme_energy = Vec::new();
        let mut scheme_delivery = Vec::new();
        for scheme in [Scheme::Opportunistic, Scheme::Greedy] {
            let trace = opts.runner.trace.as_ref().map(|spec| {
                let path = spec.job_path(0.0, f as usize, scheme);
                let sink = JsonlSink::create(&path)
                    .unwrap_or_else(|e| panic!("cannot create trace file {}: {e}", path.display()));
                (wsn_trace::shared(sink), spec.options())
            });
            let m = Experiment::new(spec.clone(), scheme)
                .run_on_traced(&instance, u64::MAX, trace)
                .expect("an unbounded event budget cannot trip")
                .record
                .metrics();
            scheme_energy.push(m.avg_activity_energy);
            scheme_delivery.push(m.delivery_ratio);
        }

        // Omniscient multicast: one transmission per GIT edge per round,
        // perfect delivery, zero control traffic. Energy per frame: the
        // transmitter plus every in-range hearer.
        let g = Graph::from_topology(&instance.field.topology);
        let sink = instance.sinks[0].index();
        let sources: Vec<usize> = instance.sources.iter().map(|s| s.index()).collect();
        let git = greedy_incremental_tree(&g, sink, &sources);
        let cfg = NetConfig::default();
        let frame_s = cfg.tx_duration(64).as_secs_f64();
        let avg_degree = instance.field.topology.average_degree();
        let per_frame_j = frame_s * (cfg.energy.tx_w + avg_degree * cfg.energy.rx_w);
        // Per round, `git.cost` frames deliver all 5 sources' events; the
        // sink counts 5 distinct events per round.
        let omniscient_energy = git.cost * per_frame_j / nodes as f64 / sources.len() as f64;

        (
            [
                flood_energy,
                scheme_energy[0],
                scheme_energy[1],
                omniscient_energy,
            ],
            [flood_delivery, scheme_delivery[0], scheme_delivery[1], 1.0],
        )
    });

    for (f, (energy_row, delivery_row)) in rows.into_iter().enumerate() {
        energy.push_row(
            f as f64,
            energy_row.into_iter().map(|v| Summary::of([v])).collect(),
        );
        delivery.push_row(
            f as f64,
            delivery_row.into_iter().map(|v| Summary::of([v])).collect(),
        );
    }

    println!("{}", energy.render_text());
    println!("{}", delivery.render_text());
    println!(
        "# Expected ordering per field: omniscient ≤ greedy ≤ opportunistic ≤ flooding\n\
         # (energy); flooding matches or beats the rest on delivery."
    );
}
