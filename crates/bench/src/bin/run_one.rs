//! Run a single experiment with explicit parameters and print everything —
//! the metrics, the physical-layer counters, the message breakdown, and
//! optionally an SVG of the field with the aggregation tree that formed.
//!
//! ```sh
//! cargo run --release -p wsn-bench --bin run_one -- \
//!     --nodes 250 --scheme greedy --duration 200 --seed 7 --svg field.svg
//! ```
//!
//! `--max-events N` arms the watchdog: the run aborts (exit status 2) if it
//! would dispatch more than `N` simulator events before the deadline.
//! `--mac {csma,rtscts,ideal}` picks the MAC layer (default: plain
//! CSMA/CA+ACK). `--scale FACTOR` multiplies `--nodes` by `FACTOR` and the
//! 200 m field side by `√FACTOR`, preserving node density while growing the
//! field (`--nodes 200 --scale 50` is a 10,000-node run at the paper's
//! 200-node density). `--metrics PATH` attaches the in-sim metrics registry
//! and writes its snapshot stream (JSONL) to `PATH`; `--prometheus` prints
//! the final registry in Prometheus exposition format on stdout (both may
//! be combined).

use wsn_diffusion::{DiffusionConfig, DiffusionNode, MsgKind, Role, Scheme};
use wsn_metrics::RunRecord;
use wsn_net::{MacKind, NetConfig, Network};
use wsn_scenario::{
    render_svg, Connectivity, FailureConfig, RenderOverlay, ScenarioSpec, SourcePlacement,
};
use wsn_sim::SimDuration;

struct Args {
    nodes: usize,
    scheme: Scheme,
    duration_s: u64,
    seed: u64,
    sources: usize,
    sinks: usize,
    failures: bool,
    random_sources: bool,
    mac: MacKind,
    svg: Option<String>,
    max_events: Option<u64>,
    scale: f64,
    metrics: Option<String>,
    prometheus: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        nodes: 200,
        scheme: Scheme::Greedy,
        duration_s: 200,
        seed: 2002,
        sources: 5,
        sinks: 1,
        failures: false,
        random_sources: false,
        mac: MacKind::default(),
        svg: None,
        max_events: None,
        scale: 1.0,
        metrics: None,
        prometheus: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| panic!("{a} needs a value"));
        match a.as_str() {
            "--nodes" => args.nodes = val().parse().expect("--nodes"),
            "--scheme" => {
                args.scheme = match val().as_str() {
                    "greedy" => Scheme::Greedy,
                    "opportunistic" => Scheme::Opportunistic,
                    other => panic!("unknown scheme {other:?} (greedy|opportunistic)"),
                }
            }
            "--duration" => args.duration_s = val().parse().expect("--duration"),
            "--seed" => args.seed = val().parse().expect("--seed"),
            "--sources" => args.sources = val().parse().expect("--sources"),
            "--sinks" => args.sinks = val().parse().expect("--sinks"),
            "--failures" => args.failures = true,
            "--random-sources" => args.random_sources = true,
            "--mac" => args.mac = val().parse().expect("--mac (csma|rtscts|ideal)"),
            "--svg" => args.svg = Some(val()),
            "--max-events" => args.max_events = Some(val().parse().expect("--max-events")),
            "--metrics" => args.metrics = Some(val()),
            "--prometheus" => args.prometheus = true,
            "--scale" => {
                args.scale = val().parse().expect("--scale");
                assert!(
                    args.scale.is_finite() && args.scale > 0.0,
                    "--scale must be positive"
                );
            }
            other => panic!("unknown argument {other:?}; see the module docs of run_one for usage"),
        }
    }
    args
}

fn main() {
    let mut args = parse_args();
    let defaults = ScenarioSpec::default();
    let mut field_side_m = defaults.field_side_m;
    let mut connectivity = defaults.connectivity;
    if args.scale != 1.0 {
        // Density-preserving scale-up, mirroring the figure harness's
        // `--scale`: more nodes in a proportionally wider square. At scale,
        // full connectivity of a constant-density random field is no longer
        // drawable, so accept a 90% giant component (roles stay inside it).
        args.nodes = ((args.nodes as f64) * args.scale).round().max(1.0) as usize;
        field_side_m *= args.scale.sqrt();
        connectivity = Connectivity::GiantComponent { min_fraction: 0.9 };
    }
    let spec = ScenarioSpec {
        node_count: args.nodes,
        field_side_m,
        connectivity,
        num_sources: args.sources,
        num_sinks: args.sinks,
        source_placement: if args.random_sources {
            SourcePlacement::Uniform
        } else {
            SourcePlacement::PAPER_CORNER
        },
        failures: args.failures.then(FailureConfig::default),
        mac: args.mac,
        duration: SimDuration::from_secs(args.duration_s),
        seed: args.seed,
        ..defaults
    };
    let instance = spec.instantiate();
    println!(
        "field: {} nodes in {:.0} m square, degree {:.1}, {} placements rejected, \
         sources {:?}, sinks {:?}, scheme {}",
        args.nodes,
        spec.field_side_m,
        instance.field.topology.average_degree(),
        instance.field.retries,
        instance.sources,
        instance.sinks,
        args.scheme
    );

    // Metric ids register before the engine exists (fixed-slot registry).
    let want_metrics = args.metrics.is_some() || args.prometheus;
    let mut registered = None;
    let mut diff_ids = None;
    if want_metrics {
        let mut reg = wsn_metrics::MetricsRegistry::new();
        let net_ids = wsn_net::NetMetricIds::register(&mut reg, spec.mac);
        diff_ids = Some(wsn_diffusion::DiffusionMetricIds::register(&mut reg));
        registered = Some((reg, net_ids));
    }
    let cfg = DiffusionConfig::for_scheme(args.scheme);
    let mut net = Network::new(
        instance.field.topology.clone(),
        NetConfig {
            mac: spec.mac,
            ..NetConfig::default()
        },
        spec.seed,
        |id| {
            let (is_source, is_sink) = instance.role_of(id);
            let node = DiffusionNode::new(cfg.clone(), id, Role { is_source, is_sink });
            match diff_ids {
                Some(ids) => node.with_metrics(ids),
                None => node,
            }
        },
    );
    for e in &instance.failure_events {
        if e.down {
            net.schedule_down(e.at, e.node);
        } else {
            net.schedule_up(e.at, e.node);
        }
    }
    if let Some((reg, net_ids)) = registered {
        let out: Option<Box<dyn std::io::Write>> = args.metrics.as_ref().map(|path| {
            let file = std::fs::File::create(path)
                .unwrap_or_else(|e| panic!("cannot create metrics file {path}: {e}"));
            Box::new(std::io::BufWriter::new(file)) as Box<dyn std::io::Write>
        });
        net.install_metrics(reg, net_ids, wsn_net::MetricsOptions::default(), out);
    }
    let wall = std::time::Instant::now();
    if let Err(err) = net.run_until_capped(instance.end, args.max_events.unwrap_or(u64::MAX)) {
        eprintln!("error: {err}");
        std::process::exit(2);
    }
    let wall = wall.elapsed();

    // Harvest.
    let mut distinct = 0u64;
    let mut delay_sum = 0.0;
    let mut generated = 0u64;
    for (_, p) in net.protocols() {
        if p.role().is_sink {
            distinct += p.sink.distinct;
            delay_sum += p.sink.delay_sum_s;
        }
        if p.role().is_source {
            generated += p.events_generated;
        }
    }
    let stats = net.stats();
    let record = RunRecord {
        node_count: args.nodes,
        sink_count: instance.sinks.len(),
        duration_s: instance.end.as_secs_f64(),
        total_energy_j: net.total_energy(),
        activity_energy_j: net.total_activity_energy(),
        distinct_events: distinct,
        delay_sum_s: delay_sum,
        events_generated: generated,
        tx_frames: stats.total_tx_frames(),
        tx_bytes: stats.total_tx_bytes(),
        collisions: stats.collisions,
    };
    let m = record.metrics();
    println!("\nmetrics:");
    println!(
        "  avg dissipated energy (total): {:.6} J/node/event",
        m.avg_dissipated_energy
    );
    println!(
        "  avg dissipated energy (tx+rx): {:.6} J/node/event",
        m.avg_activity_energy
    );
    println!("  avg delay:                     {:.3} s", m.avg_delay_s);
    println!("  distinct-event delivery ratio: {:.3}", m.delivery_ratio);
    let mut all_delays = wsn_diffusion::SinkStats::default();
    for (_, p) in net.protocols() {
        if p.role().is_sink {
            all_delays.delays_s.extend_from_slice(&p.sink.delays_s);
        }
    }
    if !all_delays.delays_s.is_empty() {
        println!(
            "  delay percentiles:             p50 {:.3} s / p95 {:.3} s / p99 {:.3} s",
            all_delays.delay_percentile_s(50.0),
            all_delays.delay_percentile_s(95.0),
            all_delays.delay_percentile_s(99.0)
        );
    }
    println!("\nphysical layer:");
    println!(
        "  frames {} ({} bytes), collisions {}, retries {}, failed unicasts {}",
        record.tx_frames,
        record.tx_bytes,
        record.collisions,
        stats.total_retries(),
        stats.total_failed()
    );
    println!(
        "  energy {:.1} J total / {:.1} J communication",
        record.total_energy_j, record.activity_energy_j
    );
    let hotspot = (0..args.nodes)
        .map(wsn_net::NodeId::from_index)
        .map(|id| (id, net.activity_energy(id)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty field");
    println!(
        "  hotspot: {} at {:.2} J ({:.1}% of network communication energy)",
        hotspot.0,
        hotspot.1,
        100.0 * hotspot.1 / record.activity_energy_j.max(1e-12)
    );
    println!("\nmessages sent:");
    for kind in MsgKind::ALL {
        let n: u64 = net.protocols().map(|(_, p)| p.counters.sent(kind)).sum();
        println!("  {kind:?}: {n}");
    }
    let accounting = net.accounting();
    println!(
        "\nsimulated {:.0} s ({} events) in {:.2} s wall time",
        record.duration_s,
        accounting.events_processed,
        wall.as_secs_f64()
    );
    if let Some(kb) = wsn_core::peak_rss_kb() {
        println!("peak RSS: {:.1} MiB", kb as f64 / 1024.0);
    }

    if want_metrics {
        let reg = net.finish_metrics().expect("metrics were installed");
        if let Some(path) = &args.metrics {
            println!("wrote {path}");
        }
        if args.prometheus {
            println!("\nprometheus exposition:");
            print!("{}", reg.render_prometheus());
        }
    }

    if let Some(path) = args.svg {
        let now = net.now();
        let tree_edges: Vec<_> = net
            .protocols()
            .flat_map(|(id, p)| {
                p.gradients()
                    .data_neighbors(now)
                    .into_iter()
                    .map(move |n| (id, n))
            })
            .collect();
        let overlay = RenderOverlay {
            sources: instance.sources.clone(),
            sinks: instance.sinks.clone(),
            tree_edges,
            down: (0..args.nodes)
                .map(wsn_net::NodeId::from_index)
                .filter(|&n| !net.is_up(n))
                .collect(),
        };
        let svg = render_svg(&instance.field, &overlay);
        std::fs::write(&path, svg).expect("write SVG");
        println!("wrote {path}");
    }
}
