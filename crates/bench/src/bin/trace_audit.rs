//! Replay run traces and check their conservation invariants: every `rx`
//! pairs with a `tx`, energy debits reconcile with the `run_end` total, and
//! the lineage stream (`event_gen`/`deliver`) recomputes *exactly* the
//! delivery ratio and average delay the run reported in its `metrics` line.
//!
//! ```sh
//! cargo run --release -p wsn-bench --bin fig8 -- --quick --trace traces/
//! cargo run --release -p wsn-bench --bin trace_audit -- traces/
//! ```
//!
//! Also accepts a single `.jsonl` file in place of a directory. Exit status:
//! `0` when every trace passes, `1` when any audit finds violations, `2` on
//! usage or I/O errors.

use std::path::{Path, PathBuf};

use wsn_trace::audit_text;

fn parse_args() -> PathBuf {
    let mut path: Option<PathBuf> = None;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            other if other.starts_with("--") => {
                eprintln!("unknown argument {other:?}; usage: trace_audit DIR|FILE.jsonl");
                std::process::exit(2);
            }
            other => {
                if path.is_some() {
                    eprintln!("at most one trace path, got a second: {other:?}");
                    std::process::exit(2);
                }
                path = Some(PathBuf::from(other));
            }
        }
    }
    path.unwrap_or_else(|| {
        eprintln!("usage: trace_audit DIR|FILE.jsonl");
        std::process::exit(2);
    })
}

/// The `.jsonl` files under `path` (or `path` itself if it is a file),
/// sorted by name for deterministic audit order.
fn trace_files(path: &Path) -> Vec<PathBuf> {
    if path.is_file() {
        return vec![path.to_path_buf()];
    }
    let Ok(entries) = std::fs::read_dir(path) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    files.sort();
    files
}

fn main() {
    let path = parse_args();
    let files = trace_files(&path);
    if files.is_empty() {
        eprintln!("error: no .jsonl trace files at {}", path.display());
        std::process::exit(2);
    }
    let mut total_violations = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", file.display());
                std::process::exit(2);
            }
        };
        let report = audit_text(&text);
        println!("=== {} ===", file.display());
        print!("{}", report.render());
        println!();
        total_violations += report.violations.len();
    }
    println!(
        "# {} trace file(s) audited, {} violation(s)",
        files.len(),
        total_violations
    );
    if total_violations > 0 {
        std::process::exit(1);
    }
}
