//! Ablation: how MAC-level unicast overhead changes the aggregation story.
//!
//! The paper's ns-2 802.11 model exchanged RTS/CTS before unicast data
//! (ns-2's default), so every data transmission carried two extra control
//! frames. Our reproduction defaults to plain CSMA/CA + ACK; this harness
//! measures both contention MACs *and* the ideal contention-free MAC on
//! identical fields. The CSMA-vs-RTS/CTS spread quantifies how
//! per-transmission overhead amplifies greedy aggregation's savings (the
//! suspected cause of our Figure 10 gap being smaller than the paper's —
//! see `EXPERIMENTS.md`), and the ideal column is the lower bound: whatever
//! greedy/opportunistic gap survives without any contention or control
//! frames is pure transmission-count savings.
//!
//! ```sh
//! cargo run --release -p wsn-bench --bin mac_overhead [-- --fields N --duration SECS]
//! ```

use wsn_bench::HarnessOptions;
use wsn_core::{collect_points, field_seed, sweep_jobs, MetricKind};
use wsn_diffusion::{DiffusionConfig, Scheme};
use wsn_metrics::{FigureTable, Summary};
use wsn_net::MacKind;
use wsn_scenario::ScenarioSpec;

fn main() {
    let opts = HarnessOptions::from_env();
    let fields = opts.params.fields_per_point.min(6);
    let duration = opts.params.duration;

    // The three MACs are the sweep points; identical fields under all of
    // them (the seed ignores the point index). Each spec's MAC choice rides
    // into its jobs' NetConfig through the normal sweep plumbing.
    let macs = [
        ("csma+ack", MacKind::Csma),
        ("rts/cts", MacKind::RtsCts),
        ("ideal", MacKind::Ideal),
    ];
    let xs = [0.0, 1.0, 2.0];
    let jobs = sweep_jobs(
        &xs,
        fields,
        |pi, f| {
            let mut spec =
                ScenarioSpec::paper(250, field_seed(opts.params.seed ^ 0xACC, 0, f as u64));
            spec.duration = duration;
            spec.mac = macs[pi].1;
            spec
        },
        |_, scheme| DiffusionConfig::for_scheme(scheme),
    );
    let points = collect_points(&opts.runner, &xs, &jobs)
        .expect("mac-overhead sweeps run without a watchdog budget");

    let mut per_mac: Vec<(Summary, Summary, f64)> = Vec::new();
    for (mi, point) in points.iter().enumerate() {
        let g = point.summary(Scheme::Greedy, MetricKind::ActivityEnergy);
        let o = point.summary(Scheme::Opportunistic, MetricKind::ActivityEnergy);
        let ratio = if o.mean > 0.0 { g.mean / o.mean } else { 1.0 };
        println!(
            "# {}: greedy {:.6}, opportunistic {:.6}, ratio {:.3}",
            macs[mi].0, g.mean, o.mean, ratio
        );
        per_mac.push((g, o, ratio));
    }

    // One column per MAC; rows are the metric (greedy energy, opportunistic
    // energy, and their ratio).
    let mut table = FigureTable::new(
        "MAC-overhead ablation at 250 nodes — Average Dissipated Energy (J/node/event)",
        "metric",
        macs.iter().map(|(name, _)| (*name).to_string()).collect(),
    );
    table.push_row(0.0, per_mac.iter().map(|(g, _, _)| *g).collect());
    table.push_row(1.0, per_mac.iter().map(|(_, o, _)| *o).collect());
    table.push_row(
        2.0,
        per_mac.iter().map(|(_, _, r)| Summary::of([*r])).collect(),
    );
    println!("\n{}", table.render_text());
    println!("# columns: csma+ack (this repo's default), rts/cts (ns-2 default), ideal (contention-free lower bound)");
    println!("# rows: metric 0 = greedy energy, 1 = opportunistic energy, 2 = ratio g/o");

    // How much of the greedy-vs-opportunistic savings is MAC amplification?
    let (_, _, csma_ratio) = per_mac[0];
    let (_, _, ideal_ratio) = per_mac[2];
    let csma_savings = 1.0 - csma_ratio;
    let ideal_savings = 1.0 - ideal_ratio;
    if csma_savings.abs() > f64::EPSILON {
        println!(
            "# contention-free fraction: {:.1}% of greedy's csma+ack savings survive under the \
             ideal MAC (savings {:.3} -> {:.3})",
            100.0 * ideal_savings / csma_savings,
            csma_savings,
            ideal_savings,
        );
    }
}
