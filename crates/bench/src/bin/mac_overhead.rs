//! Ablation: how MAC-level unicast overhead changes the aggregation story.
//!
//! The paper's ns-2 802.11 model exchanged RTS/CTS before unicast data
//! (ns-2's default), so every data transmission carried two extra control
//! frames. Our reproduction defaults to plain CSMA/CA + ACK; this harness
//! measures both MACs on identical fields to quantify how per-transmission
//! overhead amplifies greedy aggregation's savings (the suspected cause of
//! our Figure 10 gap being smaller than the paper's — see `EXPERIMENTS.md`).
//!
//! ```sh
//! cargo run --release -p wsn-bench --bin mac_overhead [-- --fields N --duration SECS]
//! ```

use wsn_bench::HarnessOptions;
use wsn_core::{field_seed, Experiment};
use wsn_diffusion::Scheme;
use wsn_metrics::{FigureTable, Summary};
use wsn_scenario::ScenarioSpec;

fn main() {
    let opts = HarnessOptions::from_env();
    let fields = opts.params.fields_per_point.min(6);
    let duration = opts.params.duration;

    let mut table = FigureTable::new(
        "MAC-overhead ablation at 250 nodes — Average Dissipated Energy (J/node/event)",
        "mac",
        vec![
            "greedy".into(),
            "opportunistic".into(),
            "ratio g/o".into(),
        ],
    );
    for (mi, (label, rts_cts)) in [("csma+ack", false), ("rts/cts", true)].iter().enumerate() {
        let mut greedy = Vec::new();
        let mut opportunistic = Vec::new();
        for f in 0..fields {
            let mut spec = ScenarioSpec::paper(250, field_seed(opts.params.seed ^ 0xACC, 0, f as u64));
            spec.duration = duration;
            let instance = spec.instantiate();
            for scheme in [Scheme::Greedy, Scheme::Opportunistic] {
                let mut exp = Experiment::new(spec.clone(), scheme);
                exp.net.rts_cts = *rts_cts;
                let m = exp.run_on(&instance).record.metrics();
                match scheme {
                    Scheme::Greedy => greedy.push(m.avg_activity_energy),
                    Scheme::Opportunistic => opportunistic.push(m.avg_activity_energy),
                }
            }
        }
        let g = Summary::of(greedy.iter().copied());
        let o = Summary::of(opportunistic.iter().copied());
        let ratio = if o.mean > 0.0 { g.mean / o.mean } else { 1.0 };
        table.push_row(mi as f64, vec![g, o, Summary::of([ratio])]);
        println!("# {label}: greedy {:.6}, opportunistic {:.6}, ratio {:.3}", g.mean, o.mean, ratio);
    }
    println!("\n{}", table.render_text());
    println!("# row 0 = csma+ack (this repo's default), row 1 = rts/cts (ns-2 default)");
}
