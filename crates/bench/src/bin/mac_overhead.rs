//! Ablation: how MAC-level unicast overhead changes the aggregation story.
//!
//! The paper's ns-2 802.11 model exchanged RTS/CTS before unicast data
//! (ns-2's default), so every data transmission carried two extra control
//! frames. Our reproduction defaults to plain CSMA/CA + ACK; this harness
//! measures both MACs on identical fields to quantify how per-transmission
//! overhead amplifies greedy aggregation's savings (the suspected cause of
//! our Figure 10 gap being smaller than the paper's — see `EXPERIMENTS.md`).
//!
//! ```sh
//! cargo run --release -p wsn-bench --bin mac_overhead [-- --fields N --duration SECS]
//! ```

use wsn_bench::HarnessOptions;
use wsn_core::{collect_points, field_seed, sweep_jobs, MetricKind};
use wsn_diffusion::{DiffusionConfig, Scheme};
use wsn_metrics::{FigureTable, Summary};
use wsn_scenario::ScenarioSpec;

fn main() {
    let opts = HarnessOptions::from_env();
    let fields = opts.params.fields_per_point.min(6);
    let duration = opts.params.duration;

    let mut table = FigureTable::new(
        "MAC-overhead ablation at 250 nodes — Average Dissipated Energy (J/node/event)",
        "mac",
        vec!["greedy".into(), "opportunistic".into(), "ratio g/o".into()],
    );
    // The two MAC variants are the sweep points; identical fields under
    // both (the seed ignores the point index). The RTS/CTS switch lives in
    // each job's NetConfig, set after materialization.
    let macs = [("csma+ack", false), ("rts/cts", true)];
    let xs = [0.0, 1.0];
    let mut jobs = sweep_jobs(
        &xs,
        fields,
        |_, f| {
            let mut spec =
                ScenarioSpec::paper(250, field_seed(opts.params.seed ^ 0xACC, 0, f as u64));
            spec.duration = duration;
            spec
        },
        |_, scheme| DiffusionConfig::for_scheme(scheme),
    );
    for job in &mut jobs {
        job.net.rts_cts = macs[job.point_index].1;
    }
    let points = collect_points(&opts.runner, &xs, &jobs)
        .expect("mac-overhead sweeps run without a watchdog budget");
    for (mi, point) in points.iter().enumerate() {
        let g = point.summary(Scheme::Greedy, MetricKind::ActivityEnergy);
        let o = point.summary(Scheme::Opportunistic, MetricKind::ActivityEnergy);
        let ratio = if o.mean > 0.0 { g.mean / o.mean } else { 1.0 };
        table.push_row(mi as f64, vec![g, o, Summary::of([ratio])]);
        println!(
            "# {}: greedy {:.6}, opportunistic {:.6}, ratio {:.3}",
            macs[mi].0, g.mean, o.mean, ratio
        );
    }
    println!("\n{}", table.render_text());
    println!("# row 0 = csma+ack (this repo's default), row 1 = rts/cts (ns-2 default)");
}
