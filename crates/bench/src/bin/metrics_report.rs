//! Reduce a metrics directory (`--metrics DIR` on any figure binary or
//! `run_one`) into per-layer tables, and optionally cross-check every
//! registry total against the matching telemetry trace.
//!
//! ```sh
//! cargo run --release -p wsn-bench --bin fig8 -- --quick --metrics m/ --trace t/
//! cargo run --release -p wsn-bench --bin metrics_report -- m/ --audit t/
//! ```
//!
//! Without `--audit`, prints one report per `*.metrics.jsonl` file: metric
//! families grouped by layer prefix (`phy.`, `mac.`, `engine.`,
//! `diffusion.`) in registration order, counters and gauges as totals,
//! histograms as count/sum/mean plus a sparkline over the log2 buckets.
//!
//! With `--audit TRACE_DIR`, each `NAME.metrics.jsonl` is paired with
//! `TRACE_DIR/NAME.jsonl` and the registry totals are reconciled against
//! trace-derived totals with **zero tolerance**: frames by kind vs `tx`
//! lines, receptions vs `rx` lines, collisions vs `collision` lines, drops
//! by reason vs `drop` lines, item drops by reason vs `item_drop` lines,
//! reinforcements vs `reinforce` lines, tree edges vs `tree_edge` lines,
//! aggregation fan-in count/sum vs `agg_merge` lines, and per-state energy
//! vs the nanojoule-quantized sum of `energy` debits. The metrics side
//! quantizes each debit independently (`joules_to_nj` per record), so the
//! audit does the same — summing floats first would drift.
//!
//! Also accepts a single `.metrics.jsonl` file in place of a directory.
//! Exit status: `0` clean, `1` when any audit finds violations, `2` on
//! usage or I/O errors.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use wsn_metrics::{joules_to_nj, MetricType, MetricsLine, HIST_BUCKETS};
use wsn_trace::{DropReason, ENERGY_STATES};

/// Frame-kind labels in `phy.frames_tx{kind=..}` registration order.
const FRAME_KINDS: [&str; 4] = ["data", "ack", "rts", "cts"];

struct Args {
    path: PathBuf,
    audit: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut path: Option<PathBuf> = None;
    let mut audit: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--audit" => {
                let Some(dir) = it.next() else {
                    eprintln!("--audit needs a trace directory");
                    std::process::exit(2);
                };
                audit = Some(PathBuf::from(dir));
            }
            other if other.starts_with("--") => {
                eprintln!(
                    "unknown argument {other:?}; usage: metrics_report [--audit TRACE_DIR] \
                     DIR|FILE.metrics.jsonl"
                );
                std::process::exit(2);
            }
            other => {
                if path.is_some() {
                    eprintln!("at most one metrics path, got a second: {other:?}");
                    std::process::exit(2);
                }
                path = Some(PathBuf::from(other));
            }
        }
    }
    let path = path.unwrap_or_else(|| {
        eprintln!("usage: metrics_report [--audit TRACE_DIR] DIR|FILE.metrics.jsonl");
        std::process::exit(2);
    });
    Args { path, audit }
}

/// The `.metrics.jsonl` files under `path` (or `path` itself if it is a
/// file), sorted by name for deterministic report order.
fn metrics_files(path: &Path) -> Vec<PathBuf> {
    if path.is_file() {
        return vec![path.to_path_buf()];
    }
    let Ok(entries) = std::fs::read_dir(path) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".metrics.jsonl"))
        })
        .collect();
    files.sort();
    files
}

/// One metrics stream, decoded: names in registration order plus the final
/// absolute totals from the `mtotal` line.
struct Stream {
    /// `(full name, type, per-type index)` in registration order.
    metrics: Vec<(String, MetricType, u32)>,
    /// Number of `mdelta` snapshot lines seen.
    snapshots: usize,
    counters: HashMap<u32, u64>,
    gauges: HashMap<u32, u64>,
    /// `hist index -> bucket -> count`.
    hist_buckets: HashMap<u32, [u64; HIST_BUCKETS]>,
    /// `hist index -> (count, sum)`.
    hist_stats: HashMap<u32, (u64, u64)>,
}

impl Stream {
    fn parse(text: &str, file: &Path) -> Result<Stream, String> {
        let mut metrics = Vec::new();
        let mut type_counts = [0u32; 3];
        let mut snapshots = 0usize;
        let mut totals = None;
        for (lineno, line) in text.lines().enumerate() {
            let parsed = MetricsLine::parse(line)
                .map_err(|e| format!("{}:{}: {e}", file.display(), lineno + 1))?;
            match parsed {
                MetricsLine::Header { metrics: names, .. } => {
                    for (name, kind) in names {
                        let slot = &mut type_counts[kind as usize];
                        metrics.push((name, kind, *slot));
                        *slot += 1;
                    }
                }
                MetricsLine::Delta { .. } => snapshots += 1,
                MetricsLine::Total {
                    counters,
                    gauges,
                    hist,
                    hist_stats,
                    ..
                } => totals = Some((counters, gauges, hist, hist_stats)),
            }
        }
        let Some((counters, gauges, hist, hist_stats)) = totals else {
            return Err(format!(
                "{}: no mtotal line (truncated run?)",
                file.display()
            ));
        };
        let mut hist_buckets: HashMap<u32, [u64; HIST_BUCKETS]> = HashMap::new();
        for (i, b, n) in hist {
            hist_buckets.entry(i).or_insert([0; HIST_BUCKETS])[b as usize] = n;
        }
        Ok(Stream {
            metrics,
            snapshots,
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            hist_buckets,
            hist_stats: hist_stats
                .into_iter()
                .map(|(i, count, sum)| (i, (count, sum)))
                .collect(),
        })
    }

    /// The final total of the named counter, if registered.
    fn counter(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|(n, k, _)| n == name && *k == MetricType::Counter)
            .map(|(_, _, i)| self.counters.get(i).copied().unwrap_or(0))
    }

    /// The final `(count, sum)` of the named histogram, if registered.
    fn hist(&self, name: &str) -> Option<(u64, u64)> {
        self.metrics
            .iter()
            .find(|(n, k, _)| n == name && *k == MetricType::Histogram)
            .map(|(_, _, i)| self.hist_stats.get(i).copied().unwrap_or((0, 0)))
    }
}

/// Renders a histogram's non-empty bucket range as a sparkline, one glyph
/// per log2 bucket scaled to the fullest bucket.
fn sparkline(buckets: &[u64; HIST_BUCKETS]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let last = match buckets.iter().rposition(|&n| n > 0) {
        Some(i) => i,
        None => return "(empty)".to_string(),
    };
    let max = *buckets.iter().max().expect("fixed-size array");
    buckets[..=last]
        .iter()
        .map(|&n| {
            if n == 0 {
                '·'
            } else {
                // Non-empty buckets always get at least the lowest bar.
                GLYPHS[((n * 8 - 1) / max).min(7) as usize]
            }
        })
        .collect()
}

/// Prints one stream's per-layer tables.
fn report(stream: &Stream) {
    println!("  ({} snapshot deltas)", stream.snapshots);
    let mut layer: &str = "";
    for (name, kind, i) in &stream.metrics {
        let this_layer = name.split('.').next().unwrap_or(name);
        if this_layer != layer {
            layer = this_layer;
            println!("  [{layer}]");
        }
        match kind {
            MetricType::Counter => {
                let v = stream.counters.get(i).copied().unwrap_or(0);
                println!("    {name:<42} {v:>12}");
            }
            MetricType::Gauge => {
                let v = stream.gauges.get(i).copied().unwrap_or(0);
                println!("    {name:<42} {v:>12}  (final level)");
            }
            MetricType::Histogram => {
                let (count, sum) = stream.hist_stats.get(i).copied().unwrap_or((0, 0));
                let mean = if count > 0 {
                    format!("{:.2}", sum as f64 / count as f64)
                } else {
                    "-".to_string()
                };
                let empty = [0u64; HIST_BUCKETS];
                let buckets = stream.hist_buckets.get(i).unwrap_or(&empty);
                println!(
                    "    {name:<42} {count:>12}  sum {sum}  mean {mean}  {}",
                    sparkline(buckets)
                );
            }
        }
    }
}

/// Totals recomputed from a telemetry trace, in the units the registry
/// counts them.
#[derive(Default)]
struct TraceTotals {
    tx_by_kind: HashMap<String, u64>,
    rx: u64,
    collisions: u64,
    drops: [u64; DropReason::ALL.len()],
    item_drops: [u64; DropReason::ALL.len()],
    energy_nj: [u64; ENERGY_STATES.len()],
    reinforcements: u64,
    tree_edges: u64,
    agg_count: u64,
    agg_inputs_sum: u64,
}

fn reason_slot(name: &str) -> Option<usize> {
    let reason = DropReason::parse(name)?;
    DropReason::ALL.iter().position(|&r| r == reason)
}

fn trace_totals(text: &str) -> TraceTotals {
    let mut t = TraceTotals::default();
    for line in text.lines() {
        let Some(p) = wsn_trace::parse_line(line) else {
            continue;
        };
        match p.tag().unwrap_or("") {
            "tx" => {
                if let Some(kind) = p.str_field("kind") {
                    *t.tx_by_kind.entry(kind.to_string()).or_insert(0) += 1;
                }
            }
            "rx" => t.rx += 1,
            "collision" => t.collisions += 1,
            "drop" => {
                if let Some(slot) = p.str_field("reason").and_then(reason_slot) {
                    t.drops[slot] += 1;
                }
            }
            "item_drop" => {
                if let Some(slot) = p.str_field("reason").and_then(reason_slot) {
                    t.item_drops[slot] += 1;
                }
            }
            "energy" => {
                if let (Some(state), Some(joules)) = (p.str_field("state"), p.f64_field("joules")) {
                    if let Some(slot) = ENERGY_STATES.iter().position(|&s| s == state) {
                        // Quantize per debit, exactly as the registry did.
                        t.energy_nj[slot] += joules_to_nj(joules);
                    }
                }
            }
            "reinforce" => t.reinforcements += 1,
            "tree_edge" => t.tree_edges += 1,
            "agg_merge" => {
                t.agg_count += 1;
                t.agg_inputs_sum += p.u64_field("inputs").unwrap_or(0);
            }
            _ => {}
        }
    }
    t
}

/// Cross-checks one metrics stream against its trace. Returns the number of
/// violations, printing one line per mismatch.
fn audit(stream: &Stream, trace: &TraceTotals) -> usize {
    let mut violations = 0usize;
    let mut check = |name: &str, registry: Option<u64>, expected: u64| {
        let Some(got) = registry else {
            println!("  VIOLATION: metric {name} missing from the stream header");
            violations += 1;
            return;
        };
        if got != expected {
            println!("  VIOLATION: {name}: registry {got} != trace {expected}");
            violations += 1;
        }
    };
    for kind in FRAME_KINDS {
        check(
            &format!("phy.frames_tx{{kind={kind}}}"),
            stream.counter(&format!("phy.frames_tx{{kind={kind}}}")),
            trace.tx_by_kind.get(kind).copied().unwrap_or(0),
        );
    }
    check("phy.frames_rx", stream.counter("phy.frames_rx"), trace.rx);
    check(
        "phy.collisions",
        stream.counter("phy.collisions"),
        trace.collisions,
    );
    for (slot, reason) in DropReason::ALL.iter().enumerate() {
        let name = format!("phy.drops{{reason={}}}", reason.name());
        check(&name, stream.counter(&name), trace.drops[slot]);
        let name = format!("diffusion.item_drops{{reason={}}}", reason.name());
        check(&name, stream.counter(&name), trace.item_drops[slot]);
    }
    for (slot, state) in ENERGY_STATES.iter().enumerate() {
        let name = format!("phy.energy_nj{{state={state}}}");
        check(&name, stream.counter(&name), trace.energy_nj[slot]);
    }
    check(
        "diffusion.reinforcements",
        stream.counter("diffusion.reinforcements"),
        trace.reinforcements,
    );
    check(
        "diffusion.tree_edges_added",
        stream.counter("diffusion.tree_edges_added"),
        trace.tree_edges,
    );
    match stream.hist("diffusion.agg_fanin") {
        Some((count, sum)) => {
            if count != trace.agg_count || sum != trace.agg_inputs_sum {
                println!(
                    "  VIOLATION: diffusion.agg_fanin: registry count {count} sum {sum} != \
                     trace count {} sum {}",
                    trace.agg_count, trace.agg_inputs_sum
                );
                violations += 1;
            }
        }
        None => {
            println!("  VIOLATION: metric diffusion.agg_fanin missing from the stream header");
            violations += 1;
        }
    }
    violations
}

/// `NAME.metrics.jsonl` → `TRACE_DIR/NAME.jsonl`.
fn trace_path_for(metrics_file: &Path, trace_dir: &Path) -> PathBuf {
    let name = metrics_file
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("");
    let stem = name.strip_suffix(".metrics.jsonl").unwrap_or(name);
    trace_dir.join(format!("{stem}.jsonl"))
}

fn main() {
    let args = parse_args();
    let files = metrics_files(&args.path);
    if files.is_empty() {
        eprintln!("error: no .metrics.jsonl files at {}", args.path.display());
        std::process::exit(2);
    }
    let mut total_violations = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", file.display());
                std::process::exit(2);
            }
        };
        let stream = match Stream::parse(&text, file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        println!("=== {} ===", file.display());
        report(&stream);
        if let Some(trace_dir) = &args.audit {
            let trace_file = trace_path_for(file, trace_dir);
            let trace_text = match std::fs::read_to_string(&trace_file) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read trace {}: {e}", trace_file.display());
                    std::process::exit(2);
                }
            };
            let totals = trace_totals(&trace_text);
            let v = audit(&stream, &totals);
            println!("  audit vs {}: {} violation(s)", trace_file.display(), v);
            total_violations += v;
        }
        println!();
    }
    println!(
        "# {} metrics file(s) reported, {} violation(s)",
        files.len(),
        total_violations
    );
    if total_violations > 0 {
        std::process::exit(1);
    }
}
