//! The abstract GIT-vs-SPT contrast (paper §1 and §6).
//!
//! "Recent work has compared the greedy incremental tree with the shortest
//! path tree (SPT) using abstract simulations. Based on the event-radius
//! model and the random sources model, their results indicate that the
//! transmission savings by the GIT over the SPT do not exceed 20%. However,
//! the energy savings of our greedy aggregation can definitely be much
//! higher than 20%, given our source placement schemes and high-density
//! networks."
//!
//! This harness reproduces both sides of that contrast on abstract graphs:
//! GIT-vs-SPT savings under (a) the event-radius model, (b) the random
//! sources model, and (c) the ICDCS paper's corner placement, as a function
//! of network density.

use wsn_core::Runner;
use wsn_metrics::{FigureTable, Summary};
use wsn_net::{Position, Rect};
use wsn_sim::SimRng;
use wsn_trees::{
    compare_trees, event_radius_sources, random_geometric, random_sources, region_sources,
};

fn main() {
    let mut runner = Runner::from_env();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                let v = it.next().expect("--jobs needs a value");
                runner.workers = v.parse().expect("--jobs takes an integer");
            }
            other => panic!("unknown argument {other:?}; usage: [--jobs N]"),
        }
    }
    let fields_per_point = 10;
    let node_counts = [50usize, 100, 150, 200, 250, 300, 350];
    let mut table = FigureTable::new(
        "GIT savings over SPT (fraction of transmissions), by source model",
        "nodes",
        vec![
            "event-radius".into(),
            "random-sources".into(),
            "corner (paper)".into(),
        ],
    );
    // One job per density point; savings come back keyed by point index.
    let per_point = runner.parallel_map(&node_counts, |pi, &n| {
        let mut savings = [Vec::new(), Vec::new(), Vec::new()];
        for f in 0..fields_per_point {
            let mut rng = SimRng::from_seed_stream(2002 + pi as u64, f);
            let (g, positions) = random_geometric(n, 200.0, 40.0, &mut rng);
            let sink = 0;

            // (a) Event-radius: an event in the bottom-left quadrant; all
            // nodes within a 40 m sensing radius are sources.
            let event = Position::new(50.0, 50.0);
            let er: Vec<usize> = event_radius_sources(&positions, event, 40.0)
                .into_iter()
                .filter(|&s| s != sink)
                .collect();
            if !er.is_empty() {
                savings[0].push(compare_trees(&g, sink, &er).git_savings_over_spt());
            }

            // (b) Random sources: 5 uniform sources.
            let rs = random_sources(n, 5.min(n - 1), sink, &mut rng);
            savings[1].push(compare_trees(&g, sink, &rs).git_savings_over_spt());

            // (c) The paper's corner placement: 5 sources in the bottom-left
            // 80 m square (sink stays node 0, wherever it landed).
            let field = Rect::square(200.0);
            let corner = region_sources(&positions, field.bottom_left(80.0, 80.0), 5, &mut rng);
            let corner: Vec<usize> = corner.into_iter().filter(|&s| s != sink).collect();
            if !corner.is_empty() {
                savings[2].push(compare_trees(&g, sink, &corner).git_savings_over_spt());
            }
        }
        savings
    });
    for (&n, savings) in node_counts.iter().zip(per_point) {
        table.push_row(n as f64, savings.into_iter().map(Summary::of).collect());
    }
    println!("{}", table.render_text());
    println!("## CSV\n{}", table.render_csv());
    println!(
        "# Expectation: event-radius and random-sources savings stay modest\n\
         # (≲20%, the Krishnamachari result); the corner placement's savings\n\
         # grow with density (the ICDCS paper's argument)."
    );
}
