//! Regenerates the paper's Figure 8. See `wsn_bench` for options.

use wsn_bench::{run_and_print, HarnessOptions};
use wsn_core::Figure;

fn main() {
    let opts = HarnessOptions::from_env();
    run_and_print(Figure::Fig8NumberOfSinks, &opts);
}
