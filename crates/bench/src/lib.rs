//! # wsn-bench — the figure-regeneration harness
//!
//! One binary per evaluation figure (`fig5` … `fig10`) plus `krishnamachari`
//! (the abstract GIT-vs-SPT contrast from the paper's introduction) and
//! `all_figures`. Each binary accepts:
//!
//! * `--quick` — a reduced sweep for smoke-testing (2 fields, 60 s runs);
//! * `--fields N` — override the fields-per-point count;
//! * `--duration SECS` — override the simulated duration;
//! * `--seed SEED` — override the master seed (default 2002);
//! * `--jobs N` — worker threads for the run-execution layer (default: the
//!   `WSN_JOBS` environment variable, else one per CPU; results are
//!   bit-identical at any worker count);
//! * `--max-events N` — per-run watchdog budget (max dispatched simulator
//!   events); a run that exceeds it aborts the sweep with an error naming
//!   the offending `(point, field, scheme)`;
//! * `--progress` — per-job NDJSON progress lines on stderr (point, field,
//!   scheme, simulator events, simulated seconds, wall ms, events/sec);
//! * `--trace DIR` — write one JSONL telemetry trace per job into `DIR`
//!   (created if absent), named `point<x>_field<i>_<scheme>.jsonl`; reduce
//!   a trace directory with the `trace_report` binary, check its
//!   conservation invariants with `trace_audit`. Same seed ⇒
//!   byte-identical trace files;
//! * `--metrics DIR` — attach the in-sim metrics registry to every run and
//!   write one `point<x>_field<i>_<scheme>.metrics.jsonl` snapshot stream
//!   per job into `DIR` (created if absent); reduce a metrics directory
//!   with the `metrics_report` binary. Same seed ⇒ byte-identical metrics
//!   files, and enabling metrics never changes trace bytes or figure
//!   numbers;
//! * `--profile` — attach the wall-clock dispatch profiler to every run:
//!   per-job totals ride the `--progress` stream and, combined with
//!   `--trace`, land in each trace as `profile` records (render with
//!   `trace_report --profile`). Profile numbers are wall-clock and thus
//!   nondeterministic; metrics stay bit-identical;
//! * `--scale FACTOR` — density-preserving scale-up: every sweep point runs
//!   `FACTOR`× the nodes in a `√FACTOR`× wider square, so the paper's
//!   density axis is unchanged while the field grows (`fig5 --scale 100`
//!   puts ≈5,000 nodes at the 50-node point's density). `1` (the default)
//!   is exactly the paper's geometry.
//!
//! Output is the three metric panels of the figure as aligned text tables
//! (mean ± standard deviation over fields) followed by CSV blocks, suitable
//! for `tee`-ing into `bench_output.txt` and diffing against
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use wsn_core::{run_figure_with, Figure, FigureData, FigureParams, MetricsSpec, Runner, TraceSpec};
use wsn_sim::SimDuration;

/// Command-line options shared by the figure binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOptions {
    /// The figure-regeneration parameters.
    pub params: FigureParams,
    /// Also print CSV blocks after the text tables.
    pub csv: bool,
    /// The run-execution layer configuration (workers, watchdog, progress).
    pub runner: Runner,
}

impl HarnessOptions {
    /// Parses options from an argument list (without the program name).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown or malformed arguments.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut seed = 2002u64;
        let mut quick = false;
        let mut fields: Option<usize> = None;
        let mut duration: Option<u64> = None;
        let mut csv = true;
        let mut scale = 1.0f64;
        let mut runner = Runner::from_env();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--no-csv" => csv = false,
                "--progress" => runner.progress = true,
                "--fields" => {
                    let v = it.next().expect("--fields needs a value");
                    fields = Some(v.parse().expect("--fields takes an integer"));
                }
                "--duration" => {
                    let v = it.next().expect("--duration needs a value");
                    duration = Some(v.parse().expect("--duration takes seconds"));
                }
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    seed = v.parse().expect("--seed takes an integer");
                }
                "--jobs" => {
                    let v = it.next().expect("--jobs needs a value");
                    runner.workers = v.parse().expect("--jobs takes an integer");
                }
                "--max-events" => {
                    let v = it.next().expect("--max-events needs a value");
                    runner.max_events = Some(v.parse().expect("--max-events takes an integer"));
                }
                "--trace" => {
                    let dir = it.next().expect("--trace needs a directory");
                    std::fs::create_dir_all(&dir)
                        .unwrap_or_else(|e| panic!("cannot create trace directory {dir:?}: {e}"));
                    runner.trace = Some(TraceSpec::new(dir));
                }
                "--metrics" => {
                    let dir = it.next().expect("--metrics needs a directory");
                    std::fs::create_dir_all(&dir)
                        .unwrap_or_else(|e| panic!("cannot create metrics directory {dir:?}: {e}"));
                    runner.metrics = Some(MetricsSpec::new(dir));
                }
                "--profile" => runner.profile = true,
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    let s: f64 = v.parse().expect("--scale takes a number");
                    assert!(
                        s.is_finite() && s > 0.0,
                        "--scale must be positive, got {s}"
                    );
                    scale = s;
                }
                other => panic!(
                    "unknown argument {other:?}; usage: [--quick] [--fields N] [--duration SECS] \
                     [--seed SEED] [--no-csv] [--jobs N] [--max-events N] [--progress] \
                     [--trace DIR] [--metrics DIR] [--profile] [--scale FACTOR]"
                ),
            }
        }
        let mut params = if quick {
            FigureParams::quick(seed)
        } else {
            FigureParams::paper(seed)
        };
        if let Some(f) = fields {
            params.fields_per_point = f;
        }
        if let Some(d) = duration {
            params.duration = SimDuration::from_secs(d);
        }
        params.scale = scale;
        HarnessOptions {
            params,
            csv,
            runner,
        }
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }
}

/// Runs `figure` on the options' runner and prints its panels (and CSV, if
/// enabled).
///
/// Exits the process with status 2 if a run trips the watchdog budget
/// (`--max-events`); the error names the offending `(point, field, scheme)`.
pub fn run_and_print(figure: Figure, opts: &HarnessOptions) -> FigureData {
    let start = std::time::Instant::now();
    let data = match run_figure_with(figure, &opts.params, &opts.runner) {
        Ok(data) => data,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(2);
        }
    };
    println!("{}", data.render_text());
    if opts.csv {
        println!("## CSV: energy\n{}", data.energy.render_csv());
        println!("## CSV: delay\n{}", data.delay.render_csv());
        println!("## CSV: delivery\n{}", data.delivery.render_csv());
    }
    println!(
        "# regenerated in {:.1}s wall time ({} fields/point, {} runs/point, {} workers)\n",
        start.elapsed().as_secs_f64(),
        opts.params.fields_per_point,
        opts.params.fields_per_point * 2,
        opts.runner.effective_workers(),
    );
    if let Some(kb) = wsn_core::peak_rss_kb() {
        println!("# peak RSS: {:.1} MiB\n", kb as f64 / 1024.0);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_are_paper_scale() {
        let o = HarnessOptions::parse(s(&[]));
        assert_eq!(o.params.fields_per_point, 10);
        assert_eq!(o.params.node_counts.len(), 7);
        assert!(o.csv);
        assert_eq!(o.runner.max_events, None);
    }

    #[test]
    fn quick_flag_shrinks_sweep() {
        let o = HarnessOptions::parse(s(&["--quick"]));
        assert_eq!(o.params.fields_per_point, 2);
    }

    #[test]
    fn overrides_apply() {
        let o = HarnessOptions::parse(s(&[
            "--quick",
            "--fields",
            "4",
            "--duration",
            "80",
            "--seed",
            "7",
            "--no-csv",
        ]));
        assert_eq!(o.params.fields_per_point, 4);
        assert_eq!(o.params.duration, SimDuration::from_secs(80));
        assert_eq!(o.params.seed, 7);
        assert!(!o.csv);
    }

    #[test]
    fn runner_flags_apply() {
        let o = HarnessOptions::parse(s(&["--jobs", "3", "--max-events", "5000", "--progress"]));
        assert_eq!(o.runner.workers, 3);
        assert_eq!(o.runner.effective_workers(), 3);
        assert_eq!(o.runner.max_events, Some(5000));
        assert!(o.runner.progress);
        assert!(!o.runner.profile);
    }

    #[test]
    fn profile_flag_arms_the_profiler() {
        let o = HarnessOptions::parse(s(&["--profile"]));
        assert!(o.runner.profile);
    }

    #[test]
    fn scale_flag_applies_and_defaults_to_identity() {
        assert_eq!(HarnessOptions::parse(s(&[])).params.scale, 1.0);
        let o = HarnessOptions::parse(s(&["--quick", "--scale", "100"]));
        assert_eq!(o.params.scale, 100.0);
    }

    #[test]
    #[should_panic(expected = "--scale must be positive")]
    fn non_positive_scale_panics() {
        HarnessOptions::parse(s(&["--scale", "0"]));
    }

    #[test]
    fn trace_flag_creates_the_directory_and_wires_the_runner() {
        let dir = std::env::temp_dir().join("wsn_bench_trace_flag_test");
        let o = HarnessOptions::parse(s(&["--trace", dir.to_str().expect("utf-8 temp path")]));
        let spec = o.runner.trace.expect("--trace sets a trace spec");
        assert_eq!(spec.dir, dir);
        assert!(dir.is_dir());
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn metrics_flag_creates_the_directory_and_wires_the_runner() {
        let dir = std::env::temp_dir().join("wsn_bench_metrics_flag_test");
        let o = HarnessOptions::parse(s(&["--metrics", dir.to_str().expect("utf-8 temp path")]));
        let spec = o.runner.metrics.expect("--metrics sets a metrics spec");
        assert_eq!(spec.dir, dir);
        assert!(dir.is_dir());
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_argument_panics() {
        HarnessOptions::parse(s(&["--bogus"]));
    }
}
