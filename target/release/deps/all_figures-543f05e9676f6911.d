/root/repo/target/release/deps/all_figures-543f05e9676f6911.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/release/deps/all_figures-543f05e9676f6911: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
