/root/repo/target/release/deps/wsn_metrics-591d4e620ec3d905.d: crates/metrics/src/lib.rs crates/metrics/src/record.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

/root/repo/target/release/deps/libwsn_metrics-591d4e620ec3d905.rlib: crates/metrics/src/lib.rs crates/metrics/src/record.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

/root/repo/target/release/deps/libwsn_metrics-591d4e620ec3d905.rmeta: crates/metrics/src/lib.rs crates/metrics/src/record.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

crates/metrics/src/lib.rs:
crates/metrics/src/record.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/table.rs:
