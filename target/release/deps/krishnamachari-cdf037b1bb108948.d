/root/repo/target/release/deps/krishnamachari-cdf037b1bb108948.d: crates/bench/src/bin/krishnamachari.rs

/root/repo/target/release/deps/krishnamachari-cdf037b1bb108948: crates/bench/src/bin/krishnamachari.rs

crates/bench/src/bin/krishnamachari.rs:
