/root/repo/target/release/deps/run_one-6f65f2e48669210c.d: crates/bench/src/bin/run_one.rs

/root/repo/target/release/deps/run_one-6f65f2e48669210c: crates/bench/src/bin/run_one.rs

crates/bench/src/bin/run_one.rs:
