/root/repo/target/release/deps/wsn_core-78c997f10a6b0a59.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/runner.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libwsn_core-78c997f10a6b0a59.rlib: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/runner.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libwsn_core-78c997f10a6b0a59.rmeta: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/runner.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/figures.rs:
crates/core/src/runner.rs:
crates/core/src/sweep.rs:
