/root/repo/target/release/deps/wsn_trees-7dd62449bd8f7d6d.d: crates/trees/src/lib.rs crates/trees/src/analysis.rs crates/trees/src/dijkstra.rs crates/trees/src/graph.rs crates/trees/src/models.rs crates/trees/src/steiner.rs crates/trees/src/stretch.rs crates/trees/src/trees.rs

/root/repo/target/release/deps/libwsn_trees-7dd62449bd8f7d6d.rlib: crates/trees/src/lib.rs crates/trees/src/analysis.rs crates/trees/src/dijkstra.rs crates/trees/src/graph.rs crates/trees/src/models.rs crates/trees/src/steiner.rs crates/trees/src/stretch.rs crates/trees/src/trees.rs

/root/repo/target/release/deps/libwsn_trees-7dd62449bd8f7d6d.rmeta: crates/trees/src/lib.rs crates/trees/src/analysis.rs crates/trees/src/dijkstra.rs crates/trees/src/graph.rs crates/trees/src/models.rs crates/trees/src/steiner.rs crates/trees/src/stretch.rs crates/trees/src/trees.rs

crates/trees/src/lib.rs:
crates/trees/src/analysis.rs:
crates/trees/src/dijkstra.rs:
crates/trees/src/graph.rs:
crates/trees/src/models.rs:
crates/trees/src/steiner.rs:
crates/trees/src/stretch.rs:
crates/trees/src/trees.rs:
