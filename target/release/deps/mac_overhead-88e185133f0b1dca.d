/root/repo/target/release/deps/mac_overhead-88e185133f0b1dca.d: crates/bench/src/bin/mac_overhead.rs

/root/repo/target/release/deps/mac_overhead-88e185133f0b1dca: crates/bench/src/bin/mac_overhead.rs

crates/bench/src/bin/mac_overhead.rs:
