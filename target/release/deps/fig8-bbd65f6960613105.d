/root/repo/target/release/deps/fig8-bbd65f6960613105.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-bbd65f6960613105: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
