/root/repo/target/release/deps/ablations-bd819582213d940d.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-bd819582213d940d: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
