/root/repo/target/release/deps/fig9-dc130ca17ecdc228.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-dc130ca17ecdc228: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
