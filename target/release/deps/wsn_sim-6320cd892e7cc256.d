/root/repo/target/release/deps/wsn_sim-6320cd892e7cc256.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libwsn_sim-6320cd892e7cc256.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libwsn_sim-6320cd892e7cc256.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/rng.rs:
crates/sim/src/sched.rs:
crates/sim/src/time.rs:
