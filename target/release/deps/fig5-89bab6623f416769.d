/root/repo/target/release/deps/fig5-89bab6623f416769.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-89bab6623f416769: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
