/root/repo/target/release/deps/baselines-469cc4799f989167.d: crates/bench/src/bin/baselines.rs

/root/repo/target/release/deps/baselines-469cc4799f989167: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
