/root/repo/target/release/deps/wsn_bench-0ed7c4fc71d2dbdc.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libwsn_bench-0ed7c4fc71d2dbdc.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libwsn_bench-0ed7c4fc71d2dbdc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
