/root/repo/target/release/deps/fig6-b41f134e3debf9d6.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-b41f134e3debf9d6: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
