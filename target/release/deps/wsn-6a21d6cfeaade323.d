/root/repo/target/release/deps/wsn-6a21d6cfeaade323.d: src/lib.rs

/root/repo/target/release/deps/libwsn-6a21d6cfeaade323.rlib: src/lib.rs

/root/repo/target/release/deps/libwsn-6a21d6cfeaade323.rmeta: src/lib.rs

src/lib.rs:
