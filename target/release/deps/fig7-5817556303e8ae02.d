/root/repo/target/release/deps/fig7-5817556303e8ae02.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-5817556303e8ae02: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
