/root/repo/target/release/deps/wsn_setcover-30f93148be925be1.d: crates/setcover/src/lib.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/instance.rs crates/setcover/src/transform.rs

/root/repo/target/release/deps/libwsn_setcover-30f93148be925be1.rlib: crates/setcover/src/lib.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/instance.rs crates/setcover/src/transform.rs

/root/repo/target/release/deps/libwsn_setcover-30f93148be925be1.rmeta: crates/setcover/src/lib.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/instance.rs crates/setcover/src/transform.rs

crates/setcover/src/lib.rs:
crates/setcover/src/exact.rs:
crates/setcover/src/greedy.rs:
crates/setcover/src/instance.rs:
crates/setcover/src/transform.rs:
