/root/repo/target/release/deps/wsn_net-b58601ed263093e0.d: crates/net/src/lib.rs crates/net/src/config.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/node.rs crates/net/src/packet.rs crates/net/src/position.rs crates/net/src/protocol.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libwsn_net-b58601ed263093e0.rlib: crates/net/src/lib.rs crates/net/src/config.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/node.rs crates/net/src/packet.rs crates/net/src/position.rs crates/net/src/protocol.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libwsn_net-b58601ed263093e0.rmeta: crates/net/src/lib.rs crates/net/src/config.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/node.rs crates/net/src/packet.rs crates/net/src/position.rs crates/net/src/protocol.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/config.rs:
crates/net/src/energy.rs:
crates/net/src/engine.rs:
crates/net/src/node.rs:
crates/net/src/packet.rs:
crates/net/src/position.rs:
crates/net/src/protocol.rs:
crates/net/src/topology.rs:
