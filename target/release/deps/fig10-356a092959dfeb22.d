/root/repo/target/release/deps/fig10-356a092959dfeb22.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-356a092959dfeb22: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
