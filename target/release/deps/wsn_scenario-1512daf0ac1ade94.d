/root/repo/target/release/deps/wsn_scenario-1512daf0ac1ade94.d: crates/scenario/src/lib.rs crates/scenario/src/failures.rs crates/scenario/src/field.rs crates/scenario/src/placement.rs crates/scenario/src/render.rs crates/scenario/src/spec.rs

/root/repo/target/release/deps/libwsn_scenario-1512daf0ac1ade94.rlib: crates/scenario/src/lib.rs crates/scenario/src/failures.rs crates/scenario/src/field.rs crates/scenario/src/placement.rs crates/scenario/src/render.rs crates/scenario/src/spec.rs

/root/repo/target/release/deps/libwsn_scenario-1512daf0ac1ade94.rmeta: crates/scenario/src/lib.rs crates/scenario/src/failures.rs crates/scenario/src/field.rs crates/scenario/src/placement.rs crates/scenario/src/render.rs crates/scenario/src/spec.rs

crates/scenario/src/lib.rs:
crates/scenario/src/failures.rs:
crates/scenario/src/field.rs:
crates/scenario/src/placement.rs:
crates/scenario/src/render.rs:
crates/scenario/src/spec.rs:
