/root/repo/target/debug/deps/fig10-b20b084659a9339d.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/debug/deps/libfig10-b20b084659a9339d.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
