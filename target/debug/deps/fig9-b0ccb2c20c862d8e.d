/root/repo/target/debug/deps/fig9-b0ccb2c20c862d8e.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-b0ccb2c20c862d8e: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
