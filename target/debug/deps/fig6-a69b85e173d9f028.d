/root/repo/target/debug/deps/fig6-a69b85e173d9f028.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-a69b85e173d9f028: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
