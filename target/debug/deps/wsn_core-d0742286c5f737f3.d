/root/repo/target/debug/deps/wsn_core-d0742286c5f737f3.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/runner.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libwsn_core-d0742286c5f737f3.rlib: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/runner.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libwsn_core-d0742286c5f737f3.rmeta: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/runner.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/figures.rs:
crates/core/src/runner.rs:
crates/core/src/sweep.rs:
