/root/repo/target/debug/deps/mac_overhead-83815aa303f4f783.d: crates/bench/src/bin/mac_overhead.rs

/root/repo/target/debug/deps/mac_overhead-83815aa303f4f783: crates/bench/src/bin/mac_overhead.rs

crates/bench/src/bin/mac_overhead.rs:
