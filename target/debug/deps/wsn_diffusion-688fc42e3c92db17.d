/root/repo/target/debug/deps/wsn_diffusion-688fc42e3c92db17.d: crates/diffusion/src/lib.rs crates/diffusion/src/aggregate.rs crates/diffusion/src/cache.rs crates/diffusion/src/config.rs crates/diffusion/src/flooding.rs crates/diffusion/src/gradient.rs crates/diffusion/src/msg.rs crates/diffusion/src/naming.rs crates/diffusion/src/node.rs crates/diffusion/src/stats.rs crates/diffusion/src/truncate.rs

/root/repo/target/debug/deps/wsn_diffusion-688fc42e3c92db17: crates/diffusion/src/lib.rs crates/diffusion/src/aggregate.rs crates/diffusion/src/cache.rs crates/diffusion/src/config.rs crates/diffusion/src/flooding.rs crates/diffusion/src/gradient.rs crates/diffusion/src/msg.rs crates/diffusion/src/naming.rs crates/diffusion/src/node.rs crates/diffusion/src/stats.rs crates/diffusion/src/truncate.rs

crates/diffusion/src/lib.rs:
crates/diffusion/src/aggregate.rs:
crates/diffusion/src/cache.rs:
crates/diffusion/src/config.rs:
crates/diffusion/src/flooding.rs:
crates/diffusion/src/gradient.rs:
crates/diffusion/src/msg.rs:
crates/diffusion/src/naming.rs:
crates/diffusion/src/node.rs:
crates/diffusion/src/stats.rs:
crates/diffusion/src/truncate.rs:
