/root/repo/target/debug/deps/properties-9d2e0b4df6c5df65.d: crates/setcover/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-9d2e0b4df6c5df65.rmeta: crates/setcover/tests/properties.rs Cargo.toml

crates/setcover/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
