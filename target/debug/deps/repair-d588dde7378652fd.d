/root/repo/target/debug/deps/repair-d588dde7378652fd.d: tests/repair.rs

/root/repo/target/debug/deps/repair-d588dde7378652fd: tests/repair.rs

tests/repair.rs:
