/root/repo/target/debug/deps/krishnamachari-84df4fdd55e599cb.d: crates/bench/src/bin/krishnamachari.rs

/root/repo/target/debug/deps/krishnamachari-84df4fdd55e599cb: crates/bench/src/bin/krishnamachari.rs

crates/bench/src/bin/krishnamachari.rs:
