/root/repo/target/debug/deps/wsn_net-da921f636217d980.d: crates/net/src/lib.rs crates/net/src/config.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/node.rs crates/net/src/packet.rs crates/net/src/position.rs crates/net/src/protocol.rs crates/net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libwsn_net-da921f636217d980.rmeta: crates/net/src/lib.rs crates/net/src/config.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/node.rs crates/net/src/packet.rs crates/net/src/position.rs crates/net/src/protocol.rs crates/net/src/topology.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/config.rs:
crates/net/src/energy.rs:
crates/net/src/engine.rs:
crates/net/src/node.rs:
crates/net/src/packet.rs:
crates/net/src/position.rs:
crates/net/src/protocol.rs:
crates/net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
