/root/repo/target/debug/deps/wsn-4e22c18073649257.d: src/lib.rs

/root/repo/target/debug/deps/libwsn-4e22c18073649257.rlib: src/lib.rs

/root/repo/target/debug/deps/libwsn-4e22c18073649257.rmeta: src/lib.rs

src/lib.rs:
