/root/repo/target/debug/deps/wsn_sim-c73b39a5095bc98f.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libwsn_sim-c73b39a5095bc98f.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libwsn_sim-c73b39a5095bc98f.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/rng.rs:
crates/sim/src/sched.rs:
crates/sim/src/time.rs:
