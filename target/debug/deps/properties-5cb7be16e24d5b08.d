/root/repo/target/debug/deps/properties-5cb7be16e24d5b08.d: crates/setcover/tests/properties.rs

/root/repo/target/debug/deps/properties-5cb7be16e24d5b08: crates/setcover/tests/properties.rs

crates/setcover/tests/properties.rs:
