/root/repo/target/debug/deps/fig6-a6a9a8fe3abce4e0.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-a6a9a8fe3abce4e0: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
