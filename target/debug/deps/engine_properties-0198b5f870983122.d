/root/repo/target/debug/deps/engine_properties-0198b5f870983122.d: crates/net/tests/engine_properties.rs Cargo.toml

/root/repo/target/debug/deps/libengine_properties-0198b5f870983122.rmeta: crates/net/tests/engine_properties.rs Cargo.toml

crates/net/tests/engine_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
