/root/repo/target/debug/deps/figures-02c1032623e53f6e.d: crates/core/tests/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-02c1032623e53f6e.rmeta: crates/core/tests/figures.rs Cargo.toml

crates/core/tests/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
