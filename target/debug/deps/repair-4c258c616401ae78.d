/root/repo/target/debug/deps/repair-4c258c616401ae78.d: tests/repair.rs Cargo.toml

/root/repo/target/debug/deps/librepair-4c258c616401ae78.rmeta: tests/repair.rs Cargo.toml

tests/repair.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
