/root/repo/target/debug/deps/protocol_behavior-0e1286b90edbda17.d: tests/protocol_behavior.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_behavior-0e1286b90edbda17.rmeta: tests/protocol_behavior.rs Cargo.toml

tests/protocol_behavior.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
