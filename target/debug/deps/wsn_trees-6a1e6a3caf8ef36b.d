/root/repo/target/debug/deps/wsn_trees-6a1e6a3caf8ef36b.d: crates/trees/src/lib.rs crates/trees/src/analysis.rs crates/trees/src/dijkstra.rs crates/trees/src/graph.rs crates/trees/src/models.rs crates/trees/src/steiner.rs crates/trees/src/stretch.rs crates/trees/src/trees.rs Cargo.toml

/root/repo/target/debug/deps/libwsn_trees-6a1e6a3caf8ef36b.rmeta: crates/trees/src/lib.rs crates/trees/src/analysis.rs crates/trees/src/dijkstra.rs crates/trees/src/graph.rs crates/trees/src/models.rs crates/trees/src/steiner.rs crates/trees/src/stretch.rs crates/trees/src/trees.rs Cargo.toml

crates/trees/src/lib.rs:
crates/trees/src/analysis.rs:
crates/trees/src/dijkstra.rs:
crates/trees/src/graph.rs:
crates/trees/src/models.rs:
crates/trees/src/steiner.rs:
crates/trees/src/stretch.rs:
crates/trees/src/trees.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
