/root/repo/target/debug/deps/mac_overhead-470033dc36929ef7.d: crates/bench/src/bin/mac_overhead.rs

/root/repo/target/debug/deps/mac_overhead-470033dc36929ef7: crates/bench/src/bin/mac_overhead.rs

crates/bench/src/bin/mac_overhead.rs:
