/root/repo/target/debug/deps/wsn_net-2f0fa1e20f1bd0eb.d: crates/net/src/lib.rs crates/net/src/config.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/node.rs crates/net/src/packet.rs crates/net/src/position.rs crates/net/src/protocol.rs crates/net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libwsn_net-2f0fa1e20f1bd0eb.rmeta: crates/net/src/lib.rs crates/net/src/config.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/node.rs crates/net/src/packet.rs crates/net/src/position.rs crates/net/src/protocol.rs crates/net/src/topology.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/config.rs:
crates/net/src/energy.rs:
crates/net/src/engine.rs:
crates/net/src/node.rs:
crates/net/src/packet.rs:
crates/net/src/position.rs:
crates/net/src/protocol.rs:
crates/net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
