/root/repo/target/debug/deps/figure3-3d217efcfe384324.d: crates/diffusion/tests/figure3.rs

/root/repo/target/debug/deps/figure3-3d217efcfe384324: crates/diffusion/tests/figure3.rs

crates/diffusion/tests/figure3.rs:
