/root/repo/target/debug/deps/ablations-73ab67732d4453e9.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-73ab67732d4453e9: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
