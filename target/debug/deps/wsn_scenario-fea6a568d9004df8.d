/root/repo/target/debug/deps/wsn_scenario-fea6a568d9004df8.d: crates/scenario/src/lib.rs crates/scenario/src/failures.rs crates/scenario/src/field.rs crates/scenario/src/placement.rs crates/scenario/src/render.rs crates/scenario/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libwsn_scenario-fea6a568d9004df8.rmeta: crates/scenario/src/lib.rs crates/scenario/src/failures.rs crates/scenario/src/field.rs crates/scenario/src/placement.rs crates/scenario/src/render.rs crates/scenario/src/spec.rs Cargo.toml

crates/scenario/src/lib.rs:
crates/scenario/src/failures.rs:
crates/scenario/src/field.rs:
crates/scenario/src/placement.rs:
crates/scenario/src/render.rs:
crates/scenario/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
