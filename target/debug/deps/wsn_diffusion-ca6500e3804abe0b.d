/root/repo/target/debug/deps/wsn_diffusion-ca6500e3804abe0b.d: crates/diffusion/src/lib.rs crates/diffusion/src/aggregate.rs crates/diffusion/src/cache.rs crates/diffusion/src/config.rs crates/diffusion/src/flooding.rs crates/diffusion/src/gradient.rs crates/diffusion/src/msg.rs crates/diffusion/src/naming.rs crates/diffusion/src/node.rs crates/diffusion/src/stats.rs crates/diffusion/src/truncate.rs Cargo.toml

/root/repo/target/debug/deps/libwsn_diffusion-ca6500e3804abe0b.rmeta: crates/diffusion/src/lib.rs crates/diffusion/src/aggregate.rs crates/diffusion/src/cache.rs crates/diffusion/src/config.rs crates/diffusion/src/flooding.rs crates/diffusion/src/gradient.rs crates/diffusion/src/msg.rs crates/diffusion/src/naming.rs crates/diffusion/src/node.rs crates/diffusion/src/stats.rs crates/diffusion/src/truncate.rs Cargo.toml

crates/diffusion/src/lib.rs:
crates/diffusion/src/aggregate.rs:
crates/diffusion/src/cache.rs:
crates/diffusion/src/config.rs:
crates/diffusion/src/flooding.rs:
crates/diffusion/src/gradient.rs:
crates/diffusion/src/msg.rs:
crates/diffusion/src/naming.rs:
crates/diffusion/src/node.rs:
crates/diffusion/src/stats.rs:
crates/diffusion/src/truncate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
