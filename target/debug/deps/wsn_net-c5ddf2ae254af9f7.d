/root/repo/target/debug/deps/wsn_net-c5ddf2ae254af9f7.d: crates/net/src/lib.rs crates/net/src/config.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/node.rs crates/net/src/packet.rs crates/net/src/position.rs crates/net/src/protocol.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libwsn_net-c5ddf2ae254af9f7.rlib: crates/net/src/lib.rs crates/net/src/config.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/node.rs crates/net/src/packet.rs crates/net/src/position.rs crates/net/src/protocol.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libwsn_net-c5ddf2ae254af9f7.rmeta: crates/net/src/lib.rs crates/net/src/config.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/node.rs crates/net/src/packet.rs crates/net/src/position.rs crates/net/src/protocol.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/config.rs:
crates/net/src/energy.rs:
crates/net/src/engine.rs:
crates/net/src/node.rs:
crates/net/src/packet.rs:
crates/net/src/position.rs:
crates/net/src/protocol.rs:
crates/net/src/topology.rs:
