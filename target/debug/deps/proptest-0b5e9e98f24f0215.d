/root/repo/target/debug/deps/proptest-0b5e9e98f24f0215.d: crates/proptest/src/lib.rs crates/proptest/src/arbitrary.rs crates/proptest/src/collection.rs crates/proptest/src/macros.rs crates/proptest/src/option.rs crates/proptest/src/sample.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-0b5e9e98f24f0215.rmeta: crates/proptest/src/lib.rs crates/proptest/src/arbitrary.rs crates/proptest/src/collection.rs crates/proptest/src/macros.rs crates/proptest/src/option.rs crates/proptest/src/sample.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs Cargo.toml

crates/proptest/src/lib.rs:
crates/proptest/src/arbitrary.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/macros.rs:
crates/proptest/src/option.rs:
crates/proptest/src/sample.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
