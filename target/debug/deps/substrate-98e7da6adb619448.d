/root/repo/target/debug/deps/substrate-98e7da6adb619448.d: tests/substrate.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrate-98e7da6adb619448.rmeta: tests/substrate.rs Cargo.toml

tests/substrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
