/root/repo/target/debug/deps/all_figures-912e3664f6215deb.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-912e3664f6215deb: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
