/root/repo/target/debug/deps/fig5-4cafe18a4277070d.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-4cafe18a4277070d: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
