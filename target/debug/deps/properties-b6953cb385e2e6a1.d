/root/repo/target/debug/deps/properties-b6953cb385e2e6a1.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-b6953cb385e2e6a1: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
