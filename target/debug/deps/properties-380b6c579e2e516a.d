/root/repo/target/debug/deps/properties-380b6c579e2e516a.d: crates/sim/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-380b6c579e2e516a.rmeta: crates/sim/tests/properties.rs Cargo.toml

crates/sim/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
