/root/repo/target/debug/deps/fig10-eaf54ab9bbc8f1c4.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-eaf54ab9bbc8f1c4: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
