/root/repo/target/debug/deps/baselines-43c5e83a0e1a4cee.d: crates/bench/src/bin/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-43c5e83a0e1a4cee.rmeta: crates/bench/src/bin/baselines.rs Cargo.toml

crates/bench/src/bin/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
