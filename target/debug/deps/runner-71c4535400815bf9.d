/root/repo/target/debug/deps/runner-71c4535400815bf9.d: tests/runner.rs

/root/repo/target/debug/deps/runner-71c4535400815bf9: tests/runner.rs

tests/runner.rs:
