/root/repo/target/debug/deps/run_one-9d9878aa8c0ffd61.d: crates/bench/src/bin/run_one.rs Cargo.toml

/root/repo/target/debug/deps/librun_one-9d9878aa8c0ffd61.rmeta: crates/bench/src/bin/run_one.rs Cargo.toml

crates/bench/src/bin/run_one.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
