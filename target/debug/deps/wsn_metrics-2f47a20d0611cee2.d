/root/repo/target/debug/deps/wsn_metrics-2f47a20d0611cee2.d: crates/metrics/src/lib.rs crates/metrics/src/record.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

/root/repo/target/debug/deps/wsn_metrics-2f47a20d0611cee2: crates/metrics/src/lib.rs crates/metrics/src/record.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

crates/metrics/src/lib.rs:
crates/metrics/src/record.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/table.rs:
