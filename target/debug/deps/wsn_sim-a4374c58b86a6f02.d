/root/repo/target/debug/deps/wsn_sim-a4374c58b86a6f02.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/wsn_sim-a4374c58b86a6f02: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/rng.rs:
crates/sim/src/sched.rs:
crates/sim/src/time.rs:
