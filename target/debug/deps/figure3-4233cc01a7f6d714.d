/root/repo/target/debug/deps/figure3-4233cc01a7f6d714.d: crates/diffusion/tests/figure3.rs Cargo.toml

/root/repo/target/debug/deps/libfigure3-4233cc01a7f6d714.rmeta: crates/diffusion/tests/figure3.rs Cargo.toml

crates/diffusion/tests/figure3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
