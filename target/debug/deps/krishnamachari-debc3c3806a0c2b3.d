/root/repo/target/debug/deps/krishnamachari-debc3c3806a0c2b3.d: crates/bench/src/bin/krishnamachari.rs

/root/repo/target/debug/deps/krishnamachari-debc3c3806a0c2b3: crates/bench/src/bin/krishnamachari.rs

crates/bench/src/bin/krishnamachari.rs:
