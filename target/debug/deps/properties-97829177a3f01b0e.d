/root/repo/target/debug/deps/properties-97829177a3f01b0e.d: crates/diffusion/tests/properties.rs

/root/repo/target/debug/deps/properties-97829177a3f01b0e: crates/diffusion/tests/properties.rs

crates/diffusion/tests/properties.rs:
