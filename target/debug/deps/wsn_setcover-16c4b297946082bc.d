/root/repo/target/debug/deps/wsn_setcover-16c4b297946082bc.d: crates/setcover/src/lib.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/instance.rs crates/setcover/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libwsn_setcover-16c4b297946082bc.rmeta: crates/setcover/src/lib.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/instance.rs crates/setcover/src/transform.rs Cargo.toml

crates/setcover/src/lib.rs:
crates/setcover/src/exact.rs:
crates/setcover/src/greedy.rs:
crates/setcover/src/instance.rs:
crates/setcover/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
