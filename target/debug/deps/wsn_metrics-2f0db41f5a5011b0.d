/root/repo/target/debug/deps/wsn_metrics-2f0db41f5a5011b0.d: crates/metrics/src/lib.rs crates/metrics/src/record.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

/root/repo/target/debug/deps/libwsn_metrics-2f0db41f5a5011b0.rlib: crates/metrics/src/lib.rs crates/metrics/src/record.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

/root/repo/target/debug/deps/libwsn_metrics-2f0db41f5a5011b0.rmeta: crates/metrics/src/lib.rs crates/metrics/src/record.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs

crates/metrics/src/lib.rs:
crates/metrics/src/record.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/table.rs:
