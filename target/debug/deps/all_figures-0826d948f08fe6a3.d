/root/repo/target/debug/deps/all_figures-0826d948f08fe6a3.d: crates/bench/src/bin/all_figures.rs Cargo.toml

/root/repo/target/debug/deps/liball_figures-0826d948f08fe6a3.rmeta: crates/bench/src/bin/all_figures.rs Cargo.toml

crates/bench/src/bin/all_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
