/root/repo/target/debug/deps/wsn_sim-3b1149c719303fef.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libwsn_sim-3b1149c719303fef.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/rng.rs crates/sim/src/sched.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/rng.rs:
crates/sim/src/sched.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
