/root/repo/target/debug/deps/properties-c01b30817f38c1b3.d: crates/metrics/tests/properties.rs

/root/repo/target/debug/deps/properties-c01b30817f38c1b3: crates/metrics/tests/properties.rs

crates/metrics/tests/properties.rs:
