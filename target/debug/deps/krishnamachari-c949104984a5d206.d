/root/repo/target/debug/deps/krishnamachari-c949104984a5d206.d: crates/bench/src/bin/krishnamachari.rs Cargo.toml

/root/repo/target/debug/deps/libkrishnamachari-c949104984a5d206.rmeta: crates/bench/src/bin/krishnamachari.rs Cargo.toml

crates/bench/src/bin/krishnamachari.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
