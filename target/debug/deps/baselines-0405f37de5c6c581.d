/root/repo/target/debug/deps/baselines-0405f37de5c6c581.d: crates/bench/src/bin/baselines.rs

/root/repo/target/debug/deps/baselines-0405f37de5c6c581: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
