/root/repo/target/debug/deps/protocol_behavior-24817ab75f0bc9b1.d: tests/protocol_behavior.rs

/root/repo/target/debug/deps/protocol_behavior-24817ab75f0bc9b1: tests/protocol_behavior.rs

tests/protocol_behavior.rs:
