/root/repo/target/debug/deps/end_to_end-4ab48338f5b5bfd6.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-4ab48338f5b5bfd6: tests/end_to_end.rs

tests/end_to_end.rs:
