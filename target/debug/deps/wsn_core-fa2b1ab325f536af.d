/root/repo/target/debug/deps/wsn_core-fa2b1ab325f536af.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/runner.rs crates/core/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libwsn_core-fa2b1ab325f536af.rmeta: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/runner.rs crates/core/src/sweep.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/figures.rs:
crates/core/src/runner.rs:
crates/core/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
