/root/repo/target/debug/deps/wsn-136ddf1b8c32a4dc.d: src/lib.rs

/root/repo/target/debug/deps/wsn-136ddf1b8c32a4dc: src/lib.rs

src/lib.rs:
