/root/repo/target/debug/deps/substrate-cd39fd10ebe19d73.d: tests/substrate.rs

/root/repo/target/debug/deps/substrate-cd39fd10ebe19d73: tests/substrate.rs

tests/substrate.rs:
