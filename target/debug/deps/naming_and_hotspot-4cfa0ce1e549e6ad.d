/root/repo/target/debug/deps/naming_and_hotspot-4cfa0ce1e549e6ad.d: tests/naming_and_hotspot.rs

/root/repo/target/debug/deps/naming_and_hotspot-4cfa0ce1e549e6ad: tests/naming_and_hotspot.rs

tests/naming_and_hotspot.rs:
