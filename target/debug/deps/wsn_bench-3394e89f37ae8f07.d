/root/repo/target/debug/deps/wsn_bench-3394e89f37ae8f07.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/wsn_bench-3394e89f37ae8f07: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
