/root/repo/target/debug/deps/fig8-a7721fe27c897a70.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-a7721fe27c897a70: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
