/root/repo/target/debug/deps/all_figures-a34684f96f579c3d.d: crates/bench/src/bin/all_figures.rs Cargo.toml

/root/repo/target/debug/deps/liball_figures-a34684f96f579c3d.rmeta: crates/bench/src/bin/all_figures.rs Cargo.toml

crates/bench/src/bin/all_figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
