/root/repo/target/debug/deps/baselines-ad1a829de723db94.d: crates/bench/src/bin/baselines.rs

/root/repo/target/debug/deps/baselines-ad1a829de723db94: crates/bench/src/bin/baselines.rs

crates/bench/src/bin/baselines.rs:
