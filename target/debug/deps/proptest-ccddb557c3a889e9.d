/root/repo/target/debug/deps/proptest-ccddb557c3a889e9.d: crates/proptest/src/lib.rs crates/proptest/src/arbitrary.rs crates/proptest/src/collection.rs crates/proptest/src/macros.rs crates/proptest/src/option.rs crates/proptest/src/sample.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-ccddb557c3a889e9: crates/proptest/src/lib.rs crates/proptest/src/arbitrary.rs crates/proptest/src/collection.rs crates/proptest/src/macros.rs crates/proptest/src/option.rs crates/proptest/src/sample.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

crates/proptest/src/lib.rs:
crates/proptest/src/arbitrary.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/macros.rs:
crates/proptest/src/option.rs:
crates/proptest/src/sample.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
