/root/repo/target/debug/deps/wsn_scenario-9fd6346c06f9de20.d: crates/scenario/src/lib.rs crates/scenario/src/failures.rs crates/scenario/src/field.rs crates/scenario/src/placement.rs crates/scenario/src/render.rs crates/scenario/src/spec.rs

/root/repo/target/debug/deps/wsn_scenario-9fd6346c06f9de20: crates/scenario/src/lib.rs crates/scenario/src/failures.rs crates/scenario/src/field.rs crates/scenario/src/placement.rs crates/scenario/src/render.rs crates/scenario/src/spec.rs

crates/scenario/src/lib.rs:
crates/scenario/src/failures.rs:
crates/scenario/src/field.rs:
crates/scenario/src/placement.rs:
crates/scenario/src/render.rs:
crates/scenario/src/spec.rs:
