/root/repo/target/debug/deps/properties-8fb475a3a3a8f1ef.d: crates/diffusion/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-8fb475a3a3a8f1ef.rmeta: crates/diffusion/tests/properties.rs Cargo.toml

crates/diffusion/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
