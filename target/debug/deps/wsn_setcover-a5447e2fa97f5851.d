/root/repo/target/debug/deps/wsn_setcover-a5447e2fa97f5851.d: crates/setcover/src/lib.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/instance.rs crates/setcover/src/transform.rs

/root/repo/target/debug/deps/libwsn_setcover-a5447e2fa97f5851.rlib: crates/setcover/src/lib.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/instance.rs crates/setcover/src/transform.rs

/root/repo/target/debug/deps/libwsn_setcover-a5447e2fa97f5851.rmeta: crates/setcover/src/lib.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/instance.rs crates/setcover/src/transform.rs

crates/setcover/src/lib.rs:
crates/setcover/src/exact.rs:
crates/setcover/src/greedy.rs:
crates/setcover/src/instance.rs:
crates/setcover/src/transform.rs:
