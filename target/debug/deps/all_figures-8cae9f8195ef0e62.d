/root/repo/target/debug/deps/all_figures-8cae9f8195ef0e62.d: crates/bench/src/bin/all_figures.rs

/root/repo/target/debug/deps/all_figures-8cae9f8195ef0e62: crates/bench/src/bin/all_figures.rs

crates/bench/src/bin/all_figures.rs:
