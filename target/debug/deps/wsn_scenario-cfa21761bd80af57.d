/root/repo/target/debug/deps/wsn_scenario-cfa21761bd80af57.d: crates/scenario/src/lib.rs crates/scenario/src/failures.rs crates/scenario/src/field.rs crates/scenario/src/placement.rs crates/scenario/src/render.rs crates/scenario/src/spec.rs

/root/repo/target/debug/deps/libwsn_scenario-cfa21761bd80af57.rlib: crates/scenario/src/lib.rs crates/scenario/src/failures.rs crates/scenario/src/field.rs crates/scenario/src/placement.rs crates/scenario/src/render.rs crates/scenario/src/spec.rs

/root/repo/target/debug/deps/libwsn_scenario-cfa21761bd80af57.rmeta: crates/scenario/src/lib.rs crates/scenario/src/failures.rs crates/scenario/src/field.rs crates/scenario/src/placement.rs crates/scenario/src/render.rs crates/scenario/src/spec.rs

crates/scenario/src/lib.rs:
crates/scenario/src/failures.rs:
crates/scenario/src/field.rs:
crates/scenario/src/placement.rs:
crates/scenario/src/render.rs:
crates/scenario/src/spec.rs:
