/root/repo/target/debug/deps/krishnamachari-7a356554f54ca9bf.d: crates/bench/src/bin/krishnamachari.rs Cargo.toml

/root/repo/target/debug/deps/libkrishnamachari-7a356554f54ca9bf.rmeta: crates/bench/src/bin/krishnamachari.rs Cargo.toml

crates/bench/src/bin/krishnamachari.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
