/root/repo/target/debug/deps/naming_and_hotspot-eaa6a21a596a31d3.d: tests/naming_and_hotspot.rs Cargo.toml

/root/repo/target/debug/deps/libnaming_and_hotspot-eaa6a21a596a31d3.rmeta: tests/naming_and_hotspot.rs Cargo.toml

tests/naming_and_hotspot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
