/root/repo/target/debug/deps/fig8-2581e27483bc0610.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-2581e27483bc0610: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
