/root/repo/target/debug/deps/fig9-ffa1ab88ae648b64.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-ffa1ab88ae648b64: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
