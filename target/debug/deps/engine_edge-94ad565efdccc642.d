/root/repo/target/debug/deps/engine_edge-94ad565efdccc642.d: crates/net/tests/engine_edge.rs Cargo.toml

/root/repo/target/debug/deps/libengine_edge-94ad565efdccc642.rmeta: crates/net/tests/engine_edge.rs Cargo.toml

crates/net/tests/engine_edge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
