/root/repo/target/debug/deps/wsn_setcover-30b059f28ec43735.d: crates/setcover/src/lib.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/instance.rs crates/setcover/src/transform.rs

/root/repo/target/debug/deps/wsn_setcover-30b059f28ec43735: crates/setcover/src/lib.rs crates/setcover/src/exact.rs crates/setcover/src/greedy.rs crates/setcover/src/instance.rs crates/setcover/src/transform.rs

crates/setcover/src/lib.rs:
crates/setcover/src/exact.rs:
crates/setcover/src/greedy.rs:
crates/setcover/src/instance.rs:
crates/setcover/src/transform.rs:
