/root/repo/target/debug/deps/figures-c71d0e95c7dd45bb.d: crates/core/tests/figures.rs

/root/repo/target/debug/deps/figures-c71d0e95c7dd45bb: crates/core/tests/figures.rs

crates/core/tests/figures.rs:
