/root/repo/target/debug/deps/baselines-0bb002a3c76222ca.d: tests/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-0bb002a3c76222ca.rmeta: tests/baselines.rs Cargo.toml

tests/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
