/root/repo/target/debug/deps/wsn_bench-86dc9e2770cb2722.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwsn_bench-86dc9e2770cb2722.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
