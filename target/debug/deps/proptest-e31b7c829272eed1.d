/root/repo/target/debug/deps/proptest-e31b7c829272eed1.d: crates/proptest/src/lib.rs crates/proptest/src/arbitrary.rs crates/proptest/src/collection.rs crates/proptest/src/macros.rs crates/proptest/src/option.rs crates/proptest/src/sample.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-e31b7c829272eed1.rlib: crates/proptest/src/lib.rs crates/proptest/src/arbitrary.rs crates/proptest/src/collection.rs crates/proptest/src/macros.rs crates/proptest/src/option.rs crates/proptest/src/sample.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-e31b7c829272eed1.rmeta: crates/proptest/src/lib.rs crates/proptest/src/arbitrary.rs crates/proptest/src/collection.rs crates/proptest/src/macros.rs crates/proptest/src/option.rs crates/proptest/src/sample.rs crates/proptest/src/strategy.rs crates/proptest/src/test_runner.rs

crates/proptest/src/lib.rs:
crates/proptest/src/arbitrary.rs:
crates/proptest/src/collection.rs:
crates/proptest/src/macros.rs:
crates/proptest/src/option.rs:
crates/proptest/src/sample.rs:
crates/proptest/src/strategy.rs:
crates/proptest/src/test_runner.rs:
