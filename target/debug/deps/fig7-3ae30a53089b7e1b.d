/root/repo/target/debug/deps/fig7-3ae30a53089b7e1b.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-3ae30a53089b7e1b: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
