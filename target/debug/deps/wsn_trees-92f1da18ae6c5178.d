/root/repo/target/debug/deps/wsn_trees-92f1da18ae6c5178.d: crates/trees/src/lib.rs crates/trees/src/analysis.rs crates/trees/src/dijkstra.rs crates/trees/src/graph.rs crates/trees/src/models.rs crates/trees/src/steiner.rs crates/trees/src/stretch.rs crates/trees/src/trees.rs

/root/repo/target/debug/deps/wsn_trees-92f1da18ae6c5178: crates/trees/src/lib.rs crates/trees/src/analysis.rs crates/trees/src/dijkstra.rs crates/trees/src/graph.rs crates/trees/src/models.rs crates/trees/src/steiner.rs crates/trees/src/stretch.rs crates/trees/src/trees.rs

crates/trees/src/lib.rs:
crates/trees/src/analysis.rs:
crates/trees/src/dijkstra.rs:
crates/trees/src/graph.rs:
crates/trees/src/models.rs:
crates/trees/src/steiner.rs:
crates/trees/src/stretch.rs:
crates/trees/src/trees.rs:
