/root/repo/target/debug/deps/wsn-87e0ed74c44f30c9.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwsn-87e0ed74c44f30c9.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
