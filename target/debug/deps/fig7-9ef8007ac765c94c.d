/root/repo/target/debug/deps/fig7-9ef8007ac765c94c.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-9ef8007ac765c94c: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
