/root/repo/target/debug/deps/wsn_bench-23c63f4b4cd8738b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libwsn_bench-23c63f4b4cd8738b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libwsn_bench-23c63f4b4cd8738b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
