/root/repo/target/debug/deps/properties-20190401eb782027.d: crates/metrics/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-20190401eb782027.rmeta: crates/metrics/tests/properties.rs Cargo.toml

crates/metrics/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
