/root/repo/target/debug/deps/runner-cd2c3fd238ad9539.d: tests/runner.rs Cargo.toml

/root/repo/target/debug/deps/librunner-cd2c3fd238ad9539.rmeta: tests/runner.rs Cargo.toml

tests/runner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
