/root/repo/target/debug/deps/baselines-4915732e720741b0.d: tests/baselines.rs

/root/repo/target/debug/deps/baselines-4915732e720741b0: tests/baselines.rs

tests/baselines.rs:
