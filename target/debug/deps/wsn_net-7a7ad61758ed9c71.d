/root/repo/target/debug/deps/wsn_net-7a7ad61758ed9c71.d: crates/net/src/lib.rs crates/net/src/config.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/node.rs crates/net/src/packet.rs crates/net/src/position.rs crates/net/src/protocol.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/wsn_net-7a7ad61758ed9c71: crates/net/src/lib.rs crates/net/src/config.rs crates/net/src/energy.rs crates/net/src/engine.rs crates/net/src/node.rs crates/net/src/packet.rs crates/net/src/position.rs crates/net/src/protocol.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/config.rs:
crates/net/src/energy.rs:
crates/net/src/engine.rs:
crates/net/src/node.rs:
crates/net/src/packet.rs:
crates/net/src/position.rs:
crates/net/src/protocol.rs:
crates/net/src/topology.rs:
