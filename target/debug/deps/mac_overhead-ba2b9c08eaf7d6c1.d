/root/repo/target/debug/deps/mac_overhead-ba2b9c08eaf7d6c1.d: crates/bench/src/bin/mac_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libmac_overhead-ba2b9c08eaf7d6c1.rmeta: crates/bench/src/bin/mac_overhead.rs Cargo.toml

crates/bench/src/bin/mac_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
