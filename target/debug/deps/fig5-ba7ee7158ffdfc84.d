/root/repo/target/debug/deps/fig5-ba7ee7158ffdfc84.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-ba7ee7158ffdfc84: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
