/root/repo/target/debug/deps/wsn_core-fb774c172eb5cf9f.d: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/runner.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/wsn_core-fb774c172eb5cf9f: crates/core/src/lib.rs crates/core/src/experiment.rs crates/core/src/figures.rs crates/core/src/runner.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/experiment.rs:
crates/core/src/figures.rs:
crates/core/src/runner.rs:
crates/core/src/sweep.rs:
