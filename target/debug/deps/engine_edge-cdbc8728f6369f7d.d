/root/repo/target/debug/deps/engine_edge-cdbc8728f6369f7d.d: crates/net/tests/engine_edge.rs

/root/repo/target/debug/deps/engine_edge-cdbc8728f6369f7d: crates/net/tests/engine_edge.rs

crates/net/tests/engine_edge.rs:
