/root/repo/target/debug/deps/run_one-f7eefaccee932cab.d: crates/bench/src/bin/run_one.rs

/root/repo/target/debug/deps/run_one-f7eefaccee932cab: crates/bench/src/bin/run_one.rs

crates/bench/src/bin/run_one.rs:
