/root/repo/target/debug/deps/properties-4c6f8cb05876906c.d: crates/trees/tests/properties.rs

/root/repo/target/debug/deps/properties-4c6f8cb05876906c: crates/trees/tests/properties.rs

crates/trees/tests/properties.rs:
