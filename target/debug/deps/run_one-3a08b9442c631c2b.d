/root/repo/target/debug/deps/run_one-3a08b9442c631c2b.d: crates/bench/src/bin/run_one.rs

/root/repo/target/debug/deps/run_one-3a08b9442c631c2b: crates/bench/src/bin/run_one.rs

crates/bench/src/bin/run_one.rs:
