/root/repo/target/debug/deps/fig10-80247d4661963dd0.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-80247d4661963dd0: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
