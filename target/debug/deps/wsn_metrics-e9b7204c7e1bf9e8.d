/root/repo/target/debug/deps/wsn_metrics-e9b7204c7e1bf9e8.d: crates/metrics/src/lib.rs crates/metrics/src/record.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libwsn_metrics-e9b7204c7e1bf9e8.rmeta: crates/metrics/src/lib.rs crates/metrics/src/record.rs crates/metrics/src/stats.rs crates/metrics/src/table.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/record.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
