/root/repo/target/debug/deps/mac_overhead-387abf8d7f81a6e0.d: crates/bench/src/bin/mac_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libmac_overhead-387abf8d7f81a6e0.rmeta: crates/bench/src/bin/mac_overhead.rs Cargo.toml

crates/bench/src/bin/mac_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
