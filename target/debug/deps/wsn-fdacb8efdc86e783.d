/root/repo/target/debug/deps/wsn-fdacb8efdc86e783.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libwsn-fdacb8efdc86e783.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
