/root/repo/target/debug/deps/baselines-dda16c5d0a621666.d: crates/bench/src/bin/baselines.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines-dda16c5d0a621666.rmeta: crates/bench/src/bin/baselines.rs Cargo.toml

crates/bench/src/bin/baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
