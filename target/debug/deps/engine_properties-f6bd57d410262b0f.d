/root/repo/target/debug/deps/engine_properties-f6bd57d410262b0f.d: crates/net/tests/engine_properties.rs

/root/repo/target/debug/deps/engine_properties-f6bd57d410262b0f: crates/net/tests/engine_properties.rs

crates/net/tests/engine_properties.rs:
