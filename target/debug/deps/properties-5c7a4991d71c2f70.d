/root/repo/target/debug/deps/properties-5c7a4991d71c2f70.d: crates/trees/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-5c7a4991d71c2f70.rmeta: crates/trees/tests/properties.rs Cargo.toml

crates/trees/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
