/root/repo/target/debug/deps/ablations-8518af5b83add561.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-8518af5b83add561: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
