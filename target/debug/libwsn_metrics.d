/root/repo/target/debug/libwsn_metrics.rlib: /root/repo/crates/metrics/src/lib.rs /root/repo/crates/metrics/src/record.rs /root/repo/crates/metrics/src/stats.rs /root/repo/crates/metrics/src/table.rs
