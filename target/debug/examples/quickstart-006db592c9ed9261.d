/root/repo/target/debug/examples/quickstart-006db592c9ed9261.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-006db592c9ed9261: examples/quickstart.rs

examples/quickstart.rs:
