/root/repo/target/debug/examples/tree_visualization-a6d458484cb2850d.d: examples/tree_visualization.rs Cargo.toml

/root/repo/target/debug/examples/libtree_visualization-a6d458484cb2850d.rmeta: examples/tree_visualization.rs Cargo.toml

examples/tree_visualization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
