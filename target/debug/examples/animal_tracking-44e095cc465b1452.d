/root/repo/target/debug/examples/animal_tracking-44e095cc465b1452.d: examples/animal_tracking.rs Cargo.toml

/root/repo/target/debug/examples/libanimal_tracking-44e095cc465b1452.rmeta: examples/animal_tracking.rs Cargo.toml

examples/animal_tracking.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
