/root/repo/target/debug/examples/failure_robustness-465d72c98ae4f2d8.d: examples/failure_robustness.rs Cargo.toml

/root/repo/target/debug/examples/libfailure_robustness-465d72c98ae4f2d8.rmeta: examples/failure_robustness.rs Cargo.toml

examples/failure_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
