/root/repo/target/debug/examples/density_sweep-c156f4de7b58efb3.d: examples/density_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libdensity_sweep-c156f4de7b58efb3.rmeta: examples/density_sweep.rs Cargo.toml

examples/density_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
