/root/repo/target/debug/examples/failure_robustness-9ad4d33d69e8e5f8.d: examples/failure_robustness.rs

/root/repo/target/debug/examples/failure_robustness-9ad4d33d69e8e5f8: examples/failure_robustness.rs

examples/failure_robustness.rs:
