/root/repo/target/debug/examples/density_sweep-e9c7665d84381fee.d: examples/density_sweep.rs

/root/repo/target/debug/examples/density_sweep-e9c7665d84381fee: examples/density_sweep.rs

examples/density_sweep.rs:
