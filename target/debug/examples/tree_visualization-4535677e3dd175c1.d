/root/repo/target/debug/examples/tree_visualization-4535677e3dd175c1.d: examples/tree_visualization.rs

/root/repo/target/debug/examples/tree_visualization-4535677e3dd175c1: examples/tree_visualization.rs

examples/tree_visualization.rs:
