/root/repo/target/debug/examples/animal_tracking-c04dee4417ed78af.d: examples/animal_tracking.rs

/root/repo/target/debug/examples/animal_tracking-c04dee4417ed78af: examples/animal_tracking.rs

examples/animal_tracking.rs:
