#!/usr/bin/env bash
# Perf regression gate for PR 7 (in-sim metrics registry + layered
# instrumentation): re-run the baseline sweep, measure the dispatch
# profiler's wall-clock overhead AND the metrics registry's events/sec
# overhead, run the hot-path and 10k-scale microbenchmarks, and join
# everything into BENCH_PR7.json (per-job best-of-N over BENCH_REPS
# repetitions, default 5; the jobs arrays record every rep). Exits 1 if
# mean events/sec regressed more than 10% against the recorded
# BENCH_PR6.json, if any recorded hot-path microbenchmark median got more
# than 10% slower, if the 10k-node topology build exceeds its 100 ms
# absolute ceiling, or if enabling `--metrics` costs more than 5% mean
# events/sec (the PR 7 acceptance bar). Events/sec is
# machine-state-dependent, so a missed gate first re-measures, then
# recalibrates: it rebuilds the commit that recorded the reference
# artifact and measures it on this machine, comparing like with like.
# bash + git + grep/sed/awk only — no jq.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR7.json}"
baseline_ref="BENCH_PR6.json"
reps="${BENCH_REPS:-5}"
base_log="$(mktemp)"
prof_log="$(mktemp)"
try_log="$(mktemp)"
trap 'rm -f "$base_log" "$prof_log" "$try_log" "$out.tmp"' EXIT

cargo build --release -p wsn-bench >/dev/null

# Serial (--jobs 1) so per-job wall times are not distorted by core
# sharing; $reps repetitions per mode with per-job minima so a
# background-noise spike in any single ~20 ms job cannot fake a regression
# (or hide one) — each job's best-of-$reps approaches its true cost.
common=(--no-csv --progress --jobs 1)
gate_sweep=(--quick --fields 2 --duration 30)
over_sweep=(--quick --fields 1 --duration 300)
one_sweep() { # one_sweep OUT_LOG [flags...] — appends one rep
    local keep="$1"
    shift
    cargo run --release -p wsn-bench --bin fig8 -- "${common[@]}" "$@" \
        >/dev/null 2>"$try_log"
    cat "$try_log" >>"$keep"
}

# All helpers accept a (possibly multi-rep) progress log or a BENCH_PR*.json
# artifact (whose job lines are indented), hence the unanchored match.
job_walls() { # per-(point,field,scheme) minimum wall ms, one per line
    sed -n 's/.*"job":"done","point":\([0-9]*\),"field":\([0-9]*\),"scheme":"\([a-z]*\)".*"wall_ms":\([0-9.]*\).*/\1_\2_\3 \4/p' "$1" |
        awk '{if (!($1 in m) || $2 < m[$1]) m[$1] = $2}
             END {for (k in m) print m[k]}'
}
wall_sum() { # total wall ms, summing each job's best rep
    job_walls "$1" | awk '{s+=$1} END {printf "%.1f", s}'
}
eps_mean() { # mean events_per_sec, each job's best rep
    sed -n 's/.*"job":"done","point":\([0-9]*\),"field":\([0-9]*\),"scheme":"\([a-z]*\)".*"events_per_sec":\([0-9]*\).*/\1_\2_\3 \4/p' "$1" |
        awk '{if (!($1 in m) || $2 > m[$1]) m[$1] = $2}
             END {s = 0; n = 0; for (k in m) {s += m[k]; n += 1}
                  printf "%.0f", s / n}'
}

# Interleave the two modes, alternating which goes first, so slow drift
# (CPU frequency, background load) hits both equally instead of skewing
# their difference. The regression sweep mirrors the earlier artifacts;
# the profiler-overhead pair uses 300 s runs because the ~20 ms quick jobs
# are smaller than this machine's scheduling noise.
: >"$base_log"
: >"$prof_log"
for i in $(seq "$reps"); do
    if [ $((i % 2)) -eq 1 ]; then
        one_sweep "$base_log" "${gate_sweep[@]}"
        one_sweep "$prof_log" "${gate_sweep[@]}" --profile
    else
        one_sweep "$prof_log" "${gate_sweep[@]}" --profile
        one_sweep "$base_log" "${gate_sweep[@]}"
    fi
done

over_base_log="$(mktemp)"
over_prof_log="$(mktemp)"
over_metrics_log="$(mktemp)"
metrics_dir="$(mktemp -d)"
trap 'rm -f "$base_log" "$prof_log" "$try_log" "$over_base_log" \
    "$over_prof_log" "$over_metrics_log" "$out.tmp"; rm -rf "$metrics_dir"' EXIT
# The overhead differences are a few percent of wall time — smaller than
# single-rep noise — so they get a deeper rep count than the gate sweep.
# Metrics runs sit between the plain and profiled runs of each rep so CPU
# drift hits all three modes equally; the snapshot files land in a scratch
# dir (byte-identical across reps, so overwriting is harmless).
over_reps="${BENCH_OVER_REPS:-$((reps + 3))}"
for i in $(seq "$over_reps"); do
    if [ $((i % 2)) -eq 1 ]; then
        one_sweep "$over_base_log" "${over_sweep[@]}"
        one_sweep "$over_metrics_log" "${over_sweep[@]}" --metrics "$metrics_dir"
        one_sweep "$over_prof_log" "${over_sweep[@]}" --profile
    else
        one_sweep "$over_prof_log" "${over_sweep[@]}" --profile
        one_sweep "$over_metrics_log" "${over_sweep[@]}" --metrics "$metrics_dir"
        one_sweep "$over_base_log" "${over_sweep[@]}"
    fi
done

# --- Hot-path microbenchmarks (PR 5) and the 10k-scale path (PR 6): the
# slab event queue, the PHY broadcast loop, the spatial-grid topology
# build, and a short 10k-node sim. Best-of-$micro_reps medians per
# benchmark; recorded in the artifact and gated against the reference
# artifact's recorded medians when present (a reference predating a
# benchmark carries no median for it, so against that reference this run
# only records).
micro_benches="event_queue/push_pop_10k event_queue/cancel_half_10k \
event_queue/churn_steady_64 phy/broadcast_grid36_10s \
topology/build_10k scale/sim_10k_2s"
micro_log="$(mktemp)"
trap 'rm -f "$base_log" "$prof_log" "$try_log" "$over_base_log" \
    "$over_prof_log" "$micro_log" "$out.tmp"' EXIT
micro_reps="${BENCH_MICRO_REPS:-3}"
for _ in $(seq "$micro_reps"); do
    cargo bench -p wsn-bench --bench micro >>"$micro_log" 2>/dev/null
done
micro_median() { # micro_median NAME — best (min) median ns across reps
    grep -F "$1 " "$micro_log" | sed -n 's/.*median *\([0-9]*\) ns.*/\1/p' |
        sort -n | head -1
}
for b in $micro_benches; do # every benchmark must have produced a number
    test -n "$(micro_median "$b")"
done

# PR 6 acceptance bar: the 10k-node grid topology build must stay under an
# absolute 100 ms ceiling, independent of any recorded reference.
topo_10k_ns="$(micro_median topology/build_10k)"
if awk -v ns="$topo_10k_ns" 'BEGIN {exit !(ns < 100000000)}'; then
    echo "OK: topology/build_10k median ${topo_10k_ns} ns (< 100 ms ceiling)"
else
    echo "FAIL: topology/build_10k median ${topo_10k_ns} ns exceeds the" \
         "100 ms ceiling"
    exit 1
fi

jobs_n="$(grep -c '^{"job"' "$base_log")"
test "$jobs_n" -gt 0
grep -q '"profile_ns"' "$prof_log"  # the profiler actually ran

eps_now="$(eps_mean "$base_log")"
base_wall="$(wall_sum "$over_base_log")"
prof_wall="$(wall_sum "$over_prof_log")"
overhead_pct="$(awk -v b="$base_wall" -v p="$prof_wall" \
    'BEGIN {printf "%.1f", (p - b) * 100.0 / b}')"

# PR 7 acceptance bar: the metrics registry must cost at most 5% mean
# events/sec on the overhead sweep. Noise spikes re-measure once (both
# modes, keeping the interleave) before declaring a real miss.
metrics_gate() { # metrics_gate BASE_EPS METRICS_EPS — 0 inside the budget
    awk -v b="$1" -v m="$2" 'BEGIN {exit !(m >= b * 0.95)}'
}
over_eps_base="$(eps_mean "$over_base_log")"
over_eps_metrics="$(eps_mean "$over_metrics_log")"
if ! metrics_gate "$over_eps_base" "$over_eps_metrics"; then
    echo "metrics overhead gate missed; re-measuring before failing..."
    for _ in $(seq "$over_reps"); do
        one_sweep "$over_metrics_log" "${over_sweep[@]}" --metrics "$metrics_dir"
        one_sweep "$over_base_log" "${over_sweep[@]}"
    done
    over_eps_base="$(eps_mean "$over_base_log")"
    over_eps_metrics="$(eps_mean "$over_metrics_log")"
fi
metrics_overhead_pct="$(awk -v b="$over_eps_base" -v m="$over_eps_metrics" \
    'BEGIN {printf "%.1f", (b - m) * 100.0 / b}')"

{
    printf '{"bench":"fig8 --quick --fields 2 --duration 30 --jobs 1",\n'
    printf ' "reps":%s,\n' "$reps"
    printf ' "events_per_sec_mean":%s,\n' "$eps_now"
    printf ' "overhead_bench":"fig8 --quick --fields 1 --duration 300 --jobs 1",\n'
    printf ' "wall_ms_total":%s,\n' "$base_wall"
    printf ' "profiled_wall_ms_total":%s,\n' "$prof_wall"
    printf ' "profiler_overhead_pct":%s,\n' "$overhead_pct"
    printf ' "metrics_events_per_sec_mean":%s,\n' "$over_eps_metrics"
    printf ' "metrics_off_events_per_sec_mean":%s,\n' "$over_eps_base"
    printf ' "metrics_overhead_pct":%s,\n' "$metrics_overhead_pct"
    printf ' "micro_reps":%s,\n' "$micro_reps"
    printf ' "micro_median_ns":{'
    sep=''
    for b in $micro_benches; do
        printf '%s\n  "%s":%s' "$sep" "$b" "$(micro_median "$b")"
        sep=','
    done
    printf '\n },\n'
    printf ' "jobs":[\n'
    grep '^{"job"' "$base_log" | sed 's/^/  /;$!s/$/,/'
    printf ' ],\n'
    printf ' "profiled_jobs":[\n'
    grep '^{"job"' "$prof_log" | sed 's/^/  /;$!s/$/,/'
    printf ' ],\n'
    printf ' "metrics_jobs":[\n'
    grep '^{"job"' "$over_metrics_log" | sed 's/^/  /;$!s/$/,/'
    printf ' ]}\n'
} >"$out.tmp"
mv "$out.tmp" "$out"
echo "wrote $out ($jobs_n job records, profiler overhead ${overhead_pct}% wall," \
     "metrics overhead ${metrics_overhead_pct}% events/sec)"

if metrics_gate "$over_eps_base" "$over_eps_metrics"; then
    echo "OK: metrics-on overhead ${metrics_overhead_pct}% events/sec" \
         "(${over_eps_metrics} vs ${over_eps_base}, <= 5% ceiling)"
else
    echo "FAIL: metrics-on overhead ${metrics_overhead_pct}% events/sec" \
         "exceeds the 5% ceiling (${over_eps_metrics} vs ${over_eps_base})"
    exit 1
fi

gate() { # gate EPS REF — 0 inside the 10% budget, 1 regressed
    awk -v now="$1" -v ref="$2" 'BEGIN {exit !(now >= ref * 0.9)}'
}

calibrate_ref() { # sets eps_ref_now by measuring the reference commit here
    local ref_commit ref_root ref_wt ref_log
    ref_commit="$(git log -n 1 --format=%H -- "$baseline_ref")"
    [ -n "$ref_commit" ] || return 1
    echo "calibrating: building reference commit ${ref_commit:0:12} and" \
         "measuring it on this machine..."
    ref_root="$(mktemp -d)"
    ref_wt="$ref_root/wt"
    ref_log="$ref_root/progress.log"
    git worktree add --detach "$ref_wt" "$ref_commit" >/dev/null 2>&1 || {
        rm -rf "$ref_root"
        return 1
    }
    (
        cd "$ref_wt"
        cargo build --release -p wsn-bench >/dev/null
        for _ in $(seq "$reps"); do
            cargo run --release -p wsn-bench --bin fig8 -- \
                "${common[@]}" "${gate_sweep[@]}" >/dev/null 2>>"$ref_log"
        done
    )
    eps_ref_now="$(eps_mean "$ref_log")"
    git worktree remove --force "$ref_wt" >/dev/null 2>&1 || true
    rm -rf "$ref_root"
    [ -n "$eps_ref_now" ]
}

if [ -f "$baseline_ref" ]; then
    eps_ref="$(eps_mean "$baseline_ref")"
    echo "mean events/sec: $eps_now (reference $eps_ref in $baseline_ref)"
    if ! gate "$eps_now" "$eps_ref"; then
        # A shared box can stall for whole seconds; re-measure once before
        # declaring a real regression, folding the extra reps in.
        echo "gate missed; re-measuring before failing..."
        for _ in $(seq "$reps"); do
            one_sweep "$base_log" "${gate_sweep[@]}"
        done
        eps_now="$(eps_mean "$base_log")"
        echo "re-measured mean events/sec: $eps_now"
    fi
    if ! gate "$eps_now" "$eps_ref"; then
        # Still out of budget. The recorded number came from a different
        # machine state (CPU frequency, co-tenants), so absolute events/sec
        # may be incomparable across sessions: rebuild the commit that
        # recorded the reference and measure it here and now, then gate on
        # the drift-free comparison.
        if calibrate_ref; then
            echo "reference measured now: $eps_ref_now events/sec" \
                 "(recorded: $eps_ref)"
            eps_ref="$eps_ref_now"
        fi
    fi
    if gate "$eps_now" "$eps_ref"; then
        awk -v now="$eps_now" -v ref="$eps_ref" 'BEGIN {
            printf "OK: within the 10%% regression budget (%+.1f%%)\n",
                   (now - ref) * 100.0 / ref}'
    else
        awk -v now="$eps_now" -v ref="$eps_ref" 'BEGIN {
            printf "FAIL: events/sec regressed %.1f%% (>10%% budget)\n",
                   (ref - now) * 100.0 / ref}'
        exit 1
    fi

    # The microbenchmark gate: regression means a *higher* median (ns), so
    # the budget runs the other way from events/sec. References come from
    # the "micro_median_ns" object of the recorded artifact; an artifact
    # without one (pre-PR 5) just gets today's numbers recorded.
    micro_fail=0
    micro_gated=0
    for b in $micro_benches; do
        m_ref="$(grep -o "\"$b\":[0-9]*" "$baseline_ref" |
            sed 's/.*://' | head -1 || true)"
        [ -n "$m_ref" ] || continue
        micro_gated=1
        m_now="$(micro_median "$b")"
        if awk -v now="$m_now" -v ref="$m_ref" \
            'BEGIN {exit !(now <= ref * 1.1)}'; then
            awk -v b="$b" -v now="$m_now" -v ref="$m_ref" 'BEGIN {
                printf "OK: %s median %d ns (ref %d ns, %+.1f%%)\n",
                       b, now, ref, (now - ref) * 100.0 / ref}'
        else
            awk -v b="$b" -v now="$m_now" -v ref="$m_ref" 'BEGIN {
                printf "FAIL: %s median %d ns regressed %.1f%% over %d ns\n",
                       b, now, (now - ref) * 100.0 / ref, ref}'
            micro_fail=1
        fi
    done
    if [ "$micro_gated" -eq 0 ]; then
        echo "note: $baseline_ref records no microbenchmark medians;" \
             "recorded today's in $out for the next gate"
    fi
    test "$micro_fail" -eq 0
else
    echo "note: no $baseline_ref reference; skipping the regression gate"
fi
