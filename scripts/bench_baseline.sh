#!/usr/bin/env bash
# Perf baseline for the run-execution layer: run a small fixed sweep with
# per-job NDJSON --progress lines and join them into BENCH_PR5.json
# (per-job simulator events, wall ms, events/sec) so later PRs have a
# recorded reference point to diff against. bash + grep/sed only — no jq.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR5.json}"
progress_log="$(mktemp)"
trap 'rm -f "$progress_log" "$out.tmp"' EXIT

cargo build --release -p wsn-bench >/dev/null

# Serial (--jobs 1) so per-job wall times are not distorted by core sharing.
cargo run --release -p wsn-bench --bin fig8 -- \
    --quick --fields 2 --duration 30 --no-csv --progress --jobs 1 \
    >/dev/null 2>"$progress_log"

jobs_n="$(grep -c '^{"job"' "$progress_log")"
test "$jobs_n" -gt 0

{
    printf '{"bench":"fig8 --quick --fields 2 --duration 30 --jobs 1",\n'
    printf ' "jobs":[\n'
    grep '^{"job"' "$progress_log" | sed 's/^/  /;$!s/$/,/'
    printf ' ]}\n'
} >"$out.tmp"
mv "$out.tmp" "$out"
echo "wrote $out ($jobs_n job records)"
