#!/usr/bin/env bash
# Perf baseline: run a small fixed sweep with per-job NDJSON --progress
# lines, time the 10k-node scale path (grid topology build + a short
# 10k-node sim), and join everything into BENCH_PR7.json so later PRs
# have a recorded reference point to diff against. bash + grep/sed only —
# no jq.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR7.json}"
progress_log="$(mktemp)"
scale_log="$(mktemp)"
trap 'rm -f "$progress_log" "$scale_log" "$out.tmp"' EXIT

cargo build --release -p wsn-bench >/dev/null

# Serial (--jobs 1) so per-job wall times are not distorted by core sharing.
cargo run --release -p wsn-bench --bin fig8 -- \
    --quick --fields 2 --duration 30 --no-csv --progress --jobs 1 \
    >/dev/null 2>"$progress_log"

jobs_n="$(grep -c '^{"job"' "$progress_log")"
test "$jobs_n" -gt 0

# The 10k-node scale path (PR 6): topology build through the spatial grid
# and a 2-simulated-second full-stack run at 10,000 nodes.
WSN_BENCH_ONLY=10k cargo bench -p wsn-bench --bench micro >"$scale_log" 2>/dev/null
median_of() { # median_of NAME — median ns from the bench report
    grep -F "$1 " "$scale_log" | sed -n 's/.*median *\([0-9]*\) ns.*/\1/p' | head -1
}
topo_10k="$(median_of topology/build_10k)"
sim_10k="$(median_of scale/sim_10k_2s)"
test -n "$topo_10k" && test -n "$sim_10k"

{
    printf '{"bench":"fig8 --quick --fields 2 --duration 30 --jobs 1",\n'
    printf ' "scale_median_ns":{\n'
    printf '  "topology/build_10k":%s,\n' "$topo_10k"
    printf '  "scale/sim_10k_2s":%s\n' "$sim_10k"
    printf ' },\n'
    printf ' "jobs":[\n'
    grep '^{"job"' "$progress_log" | sed 's/^/  /;$!s/$/,/'
    printf ' ]}\n'
} >"$out.tmp"
mv "$out.tmp" "$out"
echo "wrote $out ($jobs_n job records, topology/build_10k ${topo_10k} ns)"
