#!/usr/bin/env bash
# Repo gate: formatting, lints, the tier-1 test suite, and a smoke sweep
# through the parallel run-execution layer. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> smoke sweep: 2 points x 2 fields through the job runner"
# fig8 --quick sweeps exactly two points (1 and 3 sinks); --fields 2 makes
# it a 2-point/2-field sweep. --progress exercises the per-job reporting.
cargo run --release -p wsn-bench --bin fig8 -- \
    --quick --fields 2 --duration 30 --no-csv --progress

echo "==> trace smoke: traced sweep is byte-stable and reduces cleanly"
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
cargo run --release -p wsn-bench --bin fig8 -- \
    --quick --fields 2 --duration 30 --no-csv --trace "$tracedir/a" >/dev/null
cargo run --release -p wsn-bench --bin fig8 -- \
    --quick --fields 2 --duration 30 --no-csv --trace "$tracedir/b" >/dev/null
ls "$tracedir/a"/*.jsonl >/dev/null  # at least one trace file written
diff -r "$tracedir/a" "$tracedir/b"  # same seed => byte-identical traces
report="$(cargo run --release -p wsn-bench --bin trace_report -- "$tracedir/a")"
echo "$report" | grep -q "per-node energy histogram"
echo "$report" | grep -q "hottest nodes"

echo "==> audit smoke: every trace passes its conservation audit"
# trace_audit exits 1 on any violation: tx/rx pairing, energy
# reconciliation, and lineage-recomputed metrics must all hold exactly.
audit="$(cargo run --release -p wsn-bench --bin trace_audit -- "$tracedir/a")"
echo "$audit" | tail -1
echo "$audit" | grep -q ", 0 violation(s)"

echo "==> metrics smoke: snapshot stream reduces and audits clean vs trace"
# One sweep with both artifacts attached: metrics_report must render
# non-empty per-layer tables, and --audit must reconcile every registry
# total against the paired trace with zero tolerance (exit 1 otherwise).
metricsdir="$(mktemp -d)"
trap 'rm -rf "$tracedir" "$metricsdir"' EXIT
cargo run --release -p wsn-bench --bin fig8 -- \
    --quick --fields 2 --duration 30 --no-csv \
    --metrics "$metricsdir" --trace "$tracedir/m" >/dev/null
ls "$metricsdir"/*.metrics.jsonl >/dev/null  # at least one stream written
mreport="$(cargo run --release -p wsn-bench --bin metrics_report -- \
    "$metricsdir" --audit "$tracedir/m")"
echo "$mreport" | tail -1
echo "$mreport" | grep -q "phy.frames_tx{kind=data}"   # non-empty tables
echo "$mreport" | grep -q "diffusion.agg_fanin"
echo "$mreport" | tail -1 | grep -q ", 0 violation(s)" # audit-clean

echo "==> scale smoke: 10k-node field + capped sim (run_one --scale 50)"
# Density-preserving scale-up: 200 nodes x50 in a 1414 m square. Builds
# the field through the spatial grid and runs a short watchdog-capped sim
# so the 10k-node path cannot rot.
scale_out="$(cargo run --release -p wsn-bench --bin run_one -- \
    --nodes 200 --scale 50 --duration 5 --max-events 5000000)"
echo "$scale_out" | head -1
echo "$scale_out" | grep -q "field: 10000 nodes"

echo "==> perf gate: scripts/bench_compare.sh"
./scripts/bench_compare.sh

echo "==> all checks passed"
